//! Virtual machines and the VM pool.
//!
//! A [`Vm`] mirrors the paper's guests: 8 vCPUs, 20 GiB RAM, a qcow2 disk
//! on shared NFS, one para-virtualized virtio NIC that is always present,
//! and optionally a VMM-bypass InfiniBand HCA passed through from the
//! host pool. State transitions enforce the paper's invariants — most
//! importantly that a VM with a passthrough device attached **cannot**
//! live-migrate, which is the problem Ninja migration exists to solve.

use crate::error::VmmError;
use crate::memory::GuestMemory;
use ninja_cluster::{Attachment, DataCenter, DeviceId, NodeId, StorageId};
use ninja_net::TransportKind;
use ninja_sim::{Bytes, SimRng, SimTime};

/// Identifier of a VM in the [`VmPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmId(pub u32);

/// Lifecycle state of a VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmState {
    /// Executing guest code.
    Running,
    /// Blocked in a SymVirt wait hypercall (paused by the VMM).
    SymWait,
    /// Being live-migrated (paused or running per precopy phase).
    Migrating,
    /// Shut down.
    Stopped,
}

/// Static configuration of a VM.
#[derive(Debug, Clone)]
pub struct VmSpec {
    /// Virtual CPUs (the paper: 8).
    pub vcpus: u32,
    /// RAM size (the paper: 20 GiB).
    pub memory: Bytes,
}

impl VmSpec {
    /// The paper's VM shape: 8 vCPUs, 20 GiB.
    pub fn paper_vm() -> Self {
        VmSpec {
            vcpus: 8,
            memory: Bytes::from_gib(20),
        }
    }
}

/// One virtual machine.
#[derive(Debug)]
pub struct Vm {
    /// The id.
    pub id: VmId,
    /// The name.
    pub name: String,
    /// The spec.
    pub spec: VmSpec,
    /// Migration-relevant memory statistics.
    pub memory: GuestMemory,
    /// Current host node.
    pub node: NodeId,
    /// Lifecycle state.
    pub state: VmState,
    /// Passthrough (VMM-bypass) devices currently attached.
    pub passthrough: Vec<DeviceId>,
    /// The always-present para-virtualized NIC.
    pub virtio_nic: DeviceId,
    /// Backing disk (NFS export).
    pub disk: StorageId,
    /// Completed live migrations (for reporting).
    pub migrations: u32,
    /// (wire bytes, duration) of the last migration (`query-migrate`).
    pub last_migration: Option<(u64, ninja_sim::SimDuration)>,
}

impl Vm {
    /// True when a live migration is legal w.r.t. attached devices.
    pub fn migratable(&self) -> bool {
        self.passthrough.is_empty()
    }
}

/// The set of VMs managed by the distributed VMMs.
#[derive(Debug, Default)]
pub struct VmPool {
    vms: Vec<Vm>,
    /// VMs currently placed on each node (keyed by `NodeId.0`),
    /// maintained at the two points a VM's `node` field is written
    /// (`create`, `complete_migration`). Destroyed VMs keep counting on
    /// their last node, exactly as a scan over the pool would.
    residents: std::collections::BTreeMap<u32, u32>,
}

impl VmPool {
    /// Creates a new instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrow the entry by id.
    pub fn get(&self, id: VmId) -> &Vm {
        &self.vms[id.0 as usize]
    }

    /// Mutably borrow the entry by id.
    pub fn get_mut(&mut self, id: VmId) -> &mut Vm {
        &mut self.vms[id.0 as usize]
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.vms.len()
    }

    /// Whether this is empty.
    pub fn is_empty(&self) -> bool {
        self.vms.is_empty()
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> impl Iterator<Item = &Vm> {
        self.vms.iter()
    }

    /// Returns the ids.
    pub fn ids(&self) -> impl Iterator<Item = VmId> + '_ {
        self.vms.iter().map(|v| v.id)
    }

    /// How many pool VMs are placed on `node` — the count a full pool
    /// scan over `vm.node` would produce, maintained incrementally so
    /// per-job snapshots (e.g. `CommEnv` construction in `ninja-mpi`)
    /// stay O(job) rather than O(pool).
    pub fn residents_on(&self, node: NodeId) -> u32 {
        self.residents.get(&node.0).copied().unwrap_or(0)
    }

    /// Boot a VM on `node` with its disk on `disk`. Fails if the node
    /// cannot hold the VM's memory. A virtio NIC is created with it.
    pub fn create(
        &mut self,
        name: impl Into<String>,
        spec: VmSpec,
        node: NodeId,
        disk: StorageId,
        dc: &mut DataCenter,
    ) -> Result<VmId, VmmError> {
        if !dc.node_mut(node).commit_vm(spec.vcpus, spec.memory) {
            return Err(VmmError::InsufficientCapacity { dst: node });
        }
        let id = VmId(self.vms.len() as u32);
        let nic = dc.devices.insert(
            ninja_cluster::PciAddr::new(0, 3, 0),
            format!("virtio-{}", id.0),
            ninja_cluster::pci::virtio_nic(0x0200_0000_0000 | id.0 as u64),
            Attachment::Guest { vm: id.0 },
        );
        let memory = GuestMemory::new(spec.memory);
        *self.residents.entry(node.0).or_insert(0) += 1;
        self.vms.push(Vm {
            id,
            name: name.into(),
            spec,
            memory,
            node,
            state: VmState::Running,
            passthrough: Vec::new(),
            virtio_nic: nic,
            disk,
            migrations: 0,
            last_migration: None,
        });
        Ok(id)
    }

    /// Pass through a free IB HCA from the VM's host into the guest.
    /// The HCA's port plugs into the cluster's fabric and begins training;
    /// returns the device and the time its link becomes active.
    pub fn attach_ib_hca(
        &mut self,
        vm: VmId,
        dc: &mut DataCenter,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Result<(DeviceId, SimTime), VmmError> {
        let node = self.get(vm).node;
        let dev = dc
            .free_ib_hca_on(node)
            .ok_or(VmmError::NoFreeDevice { node })?;
        let calib = ninja_net::calib::infiniband_qdr();
        let cid = dc.cluster_of(node);
        let active_at = dc
            .with_ib_fabric(cid, |fabric, devices| {
                let hca = devices.as_ib_mut(dev).expect("device class checked");
                hca.plug_into(fabric, now, &calib, rng)
                    .expect("fabric has LIDs")
            })
            .expect("IB HCA implies IB cluster");
        dc.devices.get_mut(dev).attachment = Attachment::Guest { vm: vm.0 };
        self.get_mut(vm).passthrough.push(dev);
        Ok((dev, active_at))
    }

    /// Detach an attached device by tag (`device_del`). If the device is
    /// an IB HCA still holding QPs/MRs and `force` is false this fails —
    /// the guest must release resources first (CRS pre-checkpoint).
    /// With `force = true` the detach proceeds and the number of leaked
    /// resources is returned (data loss).
    pub fn detach_by_tag(
        &mut self,
        vm: VmId,
        tag: &str,
        force: bool,
        dc: &mut DataCenter,
    ) -> Result<(DeviceId, usize), VmmError> {
        let dev = dc
            .devices
            .find_by_tag_on_vm(vm.0, tag)
            .ok_or_else(|| VmmError::NoSuchDeviceTag { tag: tag.into() })?;
        let leaked = if let Some(hca) = dc.devices.as_ib_mut(dev) {
            if hca.has_resources() && !force {
                return Err(VmmError::DeviceBusy {
                    device: dev,
                    leaked: hca.qp_count() + hca.mr_count(),
                });
            }
            hca.unplug()
        } else {
            if let Some(nic) = dc.devices.as_eth_mut(dev) {
                nic.unplug();
            }
            0
        };
        let node = self.get(vm).node;
        dc.devices.get_mut(dev).attachment = Attachment::Host { node: node.0 };
        self.get_mut(vm).passthrough.retain(|&d| d != dev);
        Ok((dev, leaked))
    }

    /// Pause (SymVirt wait) — only a running VM can pause.
    pub fn pause(&mut self, vm: VmId) -> Result<(), VmmError> {
        let v = self.get_mut(vm);
        match v.state {
            VmState::Running => {
                v.state = VmState::SymWait;
                Ok(())
            }
            _ => Err(VmmError::NotRunning),
        }
    }

    /// Resume (SymVirt signal).
    pub fn resume(&mut self, vm: VmId) -> Result<(), VmmError> {
        let v = self.get_mut(vm);
        match v.state {
            VmState::SymWait | VmState::Migrating => {
                v.state = VmState::Running;
                Ok(())
            }
            _ => Err(VmmError::NotPaused),
        }
    }

    /// Validate that `vm` may live-migrate to `dst` right now.
    pub fn check_migratable(&self, vm: VmId, dst: NodeId, dc: &DataCenter) -> Result<(), VmmError> {
        let v = self.get(vm);
        if let Some(&device) = v.passthrough.first() {
            return Err(VmmError::PassthroughAttached { device });
        }
        if !dc.storage_reachable(v.disk, dst) {
            return Err(VmmError::StorageNotReachable {
                storage: v.disk,
                dst,
            });
        }
        if dst != v.node {
            let free = dc
                .node(dst)
                .spec
                .memory
                .saturating_sub(dc.node(dst).committed_memory());
            if free.get() < v.spec.memory.get() {
                return Err(VmmError::InsufficientCapacity { dst });
            }
        }
        Ok(())
    }

    /// Commit the placement change of a completed migration: resources
    /// move from the source node to `dst`, and the virtio NIC follows.
    pub fn complete_migration(&mut self, vm: VmId, dst: NodeId, dc: &mut DataCenter) {
        let (vcpus, mem, src, nic) = {
            let v = self.get(vm);
            (v.spec.vcpus, v.spec.memory, v.node, v.virtio_nic)
        };
        if src != dst {
            dc.node_mut(src).release_vm(vcpus, mem);
            let ok = dc.node_mut(dst).commit_vm(vcpus, mem);
            debug_assert!(ok, "check_migratable validated capacity");
            let n = self.residents.get_mut(&src.0).expect("src was resident");
            *n -= 1;
            *self.residents.entry(dst.0).or_insert(0) += 1;
        }
        let v = self.get_mut(vm);
        v.node = dst;
        v.migrations += 1;
        // The virtio NIC is recreated on the destination QEMU instance.
        dc.devices.get_mut(nic).attachment = Attachment::Guest { vm: vm.0 };
    }

    /// Destroy a VM (crash, or teardown after its checkpoint image was
    /// restored elsewhere): host resources are released, passthrough
    /// devices return to the host pool, the virtio NIC goes away.
    pub fn destroy(&mut self, vm: VmId, dc: &mut DataCenter) {
        let (vcpus, mem, node, nic, passthrough) = {
            let v = self.get(vm);
            (
                v.spec.vcpus,
                v.spec.memory,
                v.node,
                v.virtio_nic,
                v.passthrough.clone(),
            )
        };
        if self.get(vm).state != VmState::Stopped {
            dc.node_mut(node).release_vm(vcpus, mem);
        }
        for dev in passthrough {
            if let Some(hca) = dc.devices.as_ib_mut(dev) {
                hca.unplug();
            }
            dc.devices.get_mut(dev).attachment = Attachment::Host { node: node.0 };
        }
        dc.devices.get_mut(nic).attachment = Attachment::Detached;
        let v = self.get_mut(vm);
        v.passthrough.clear();
        v.state = VmState::Stopped;
    }

    /// Boot a fresh VM from a checkpoint image on `node`. The restored
    /// guest resumes paused (SymVirt wait), exactly as it was saved —
    /// the restart choreography signals it once devices are sorted out.
    pub fn restore_from_snapshot(
        &mut self,
        snapshot: &crate::snapshot::VmSnapshot,
        node: NodeId,
        dc: &mut DataCenter,
    ) -> Result<VmId, VmmError> {
        if !dc.storage_reachable(snapshot.disk, node) {
            return Err(VmmError::StorageNotReachable {
                storage: snapshot.disk,
                dst: node,
            });
        }
        let vm = self.create(
            format!("{}:restored", snapshot.vm_name),
            snapshot.spec.clone(),
            node,
            snapshot.disk,
            dc,
        )?;
        let v = self.get_mut(vm);
        v.memory = snapshot.memory.clone();
        v.state = VmState::SymWait;
        Ok(vm)
    }

    /// The transports this VM could use at `now`: `openib` iff an
    /// attached HCA's link is active, `tcp` iff the virtio NIC is up.
    /// This is what the MPI BTL layer consults when (re)building modules.
    pub fn available_transports(
        &self,
        vm: VmId,
        dc: &DataCenter,
        now: SimTime,
    ) -> Vec<TransportKind> {
        let v = self.get(vm);
        let mut out = Vec::new();
        for &dev in &v.passthrough {
            if let Some(hca) = dc.devices.as_ib(dev) {
                if hca.is_active_at(now) {
                    out.push(TransportKind::OpenIb);
                }
            }
        }
        if let Some(nic) = dc.devices.as_eth(v.virtio_nic) {
            if nic.is_active_at(now) {
                out.push(TransportKind::Tcp);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninja_cluster::StorageId;

    fn setup() -> (
        DataCenter,
        ninja_cluster::ClusterId,
        ninja_cluster::ClusterId,
        VmPool,
        SimRng,
    ) {
        let (dc, ib, eth) = DataCenter::agc();
        (dc, ib, eth, VmPool::new(), SimRng::new(7))
    }

    #[test]
    fn create_commits_node_resources() {
        let (mut dc, ib, _, mut pool, _) = setup();
        let node = dc.cluster(ib).nodes[0];
        let vm = pool
            .create("vm0", VmSpec::paper_vm(), node, StorageId(0), &mut dc)
            .unwrap();
        assert_eq!(dc.node(node).committed_vcpus(), 8);
        assert_eq!(pool.get(vm).state, VmState::Running);
        // virtio NIC exists and is up
        assert!(dc
            .devices
            .as_eth(pool.get(vm).virtio_nic)
            .unwrap()
            .is_active_at(SimTime::ZERO));
    }

    #[test]
    fn create_rejects_oversubscription() {
        let (mut dc, ib, _, mut pool, _) = setup();
        let node = dc.cluster(ib).nodes[0];
        pool.create("vm0", VmSpec::paper_vm(), node, StorageId(0), &mut dc)
            .unwrap();
        pool.create("vm1", VmSpec::paper_vm(), node, StorageId(0), &mut dc)
            .unwrap();
        // 48 GiB node, two 20 GiB VMs fit, third does not.
        let err = pool
            .create("vm2", VmSpec::paper_vm(), node, StorageId(0), &mut dc)
            .unwrap_err();
        assert!(matches!(err, VmmError::InsufficientCapacity { .. }));
    }

    #[test]
    fn passthrough_blocks_migration() {
        let (mut dc, ib, eth, mut pool, mut rng) = setup();
        let node = dc.cluster(ib).nodes[0];
        let dst = dc.cluster(eth).nodes[0];
        let vm = pool
            .create("vm0", VmSpec::paper_vm(), node, StorageId(0), &mut dc)
            .unwrap();
        pool.attach_ib_hca(vm, &mut dc, SimTime::ZERO, &mut rng)
            .unwrap();
        let err = pool.check_migratable(vm, dst, &dc).unwrap_err();
        assert!(matches!(err, VmmError::PassthroughAttached { .. }));
        // After detach it becomes migratable.
        let tag = dc.devices.get(pool.get(vm).passthrough[0]).tag.clone();
        pool.detach_by_tag(vm, &tag, false, &mut dc).unwrap();
        assert!(pool.check_migratable(vm, dst, &dc).is_ok());
    }

    #[test]
    fn busy_hca_refuses_detach_without_force() {
        let (mut dc, ib, _, mut pool, mut rng) = setup();
        let node = dc.cluster(ib).nodes[0];
        let vm = pool
            .create("vm0", VmSpec::paper_vm(), node, StorageId(0), &mut dc)
            .unwrap();
        let (dev, active_at) = pool
            .attach_ib_hca(vm, &mut dc, SimTime::ZERO, &mut rng)
            .unwrap();
        // Guest allocates IB resources (an MPI job pinned memory).
        let cid = dc.cluster_of(node);
        dc.with_ib_fabric(cid, |fabric, devices| {
            devices
                .as_ib_mut(dev)
                .unwrap()
                .create_qp(fabric, active_at)
                .unwrap();
        })
        .unwrap();
        let tag = dc.devices.get(dev).tag.clone();
        let err = pool.detach_by_tag(vm, &tag, false, &mut dc).unwrap_err();
        assert!(matches!(err, VmmError::DeviceBusy { .. }));
        // Forced detach leaks.
        let (_, leaked) = pool.detach_by_tag(vm, &tag, true, &mut dc).unwrap();
        assert_eq!(leaked, 1);
    }

    #[test]
    fn transports_reflect_link_state() {
        let (mut dc, ib, _, mut pool, mut rng) = setup();
        let node = dc.cluster(ib).nodes[0];
        let vm = pool
            .create("vm0", VmSpec::paper_vm(), node, StorageId(0), &mut dc)
            .unwrap();
        let t0 = SimTime::ZERO;
        assert_eq!(
            pool.available_transports(vm, &dc, t0),
            vec![TransportKind::Tcp]
        );
        let (_, active_at) = pool.attach_ib_hca(vm, &mut dc, t0, &mut rng).unwrap();
        // Still polling: tcp only.
        assert_eq!(
            pool.available_transports(vm, &dc, t0),
            vec![TransportKind::Tcp]
        );
        // After link-up: both.
        let ts = pool.available_transports(vm, &dc, active_at);
        assert!(ts.contains(&TransportKind::OpenIb) && ts.contains(&TransportKind::Tcp));
    }

    #[test]
    fn migration_moves_resources() {
        let (mut dc, ib, eth, mut pool, _) = setup();
        let src = dc.cluster(ib).nodes[0];
        let dst = dc.cluster(eth).nodes[0];
        let vm = pool
            .create("vm0", VmSpec::paper_vm(), src, StorageId(0), &mut dc)
            .unwrap();
        pool.check_migratable(vm, dst, &dc).unwrap();
        pool.complete_migration(vm, dst, &mut dc);
        assert_eq!(pool.get(vm).node, dst);
        assert_eq!(dc.node(src).committed_vcpus(), 0);
        assert_eq!(dc.node(dst).committed_vcpus(), 8);
        assert_eq!(pool.get(vm).migrations, 1);
    }

    #[test]
    fn pause_resume_cycle() {
        let (mut dc, ib, _, mut pool, _) = setup();
        let node = dc.cluster(ib).nodes[0];
        let vm = pool
            .create("vm0", VmSpec::paper_vm(), node, StorageId(0), &mut dc)
            .unwrap();
        assert!(pool.resume(vm).is_err(), "cannot resume a running VM");
        pool.pause(vm).unwrap();
        assert_eq!(pool.get(vm).state, VmState::SymWait);
        assert!(pool.pause(vm).is_err(), "cannot pause twice");
        pool.resume(vm).unwrap();
        assert_eq!(pool.get(vm).state, VmState::Running);
    }

    #[test]
    fn storage_gate() {
        let (mut dc, ib, _, mut pool, _) = setup();
        let node = dc.cluster(ib).nodes[0];
        // A disk export visible only from the IB cluster.
        let lonely = dc.storage.create("local-only", &[dc.cluster_of(node).0]);
        let vm = pool
            .create("vm0", VmSpec::paper_vm(), node, lonely, &mut dc)
            .unwrap();
        let eth_dst = dc.cluster(ninja_cluster::ClusterId(1)).nodes[0];
        let err = pool.check_migratable(vm, eth_dst, &dc).unwrap_err();
        assert!(matches!(err, VmmError::StorageNotReachable { .. }));
    }
}
