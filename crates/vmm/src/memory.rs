//! Guest memory model for migration planning.
//!
//! We do not allocate guest RAM; we model its *migration-relevant
//! statistics*: how much of it is non-zero, how much of the non-zero part
//! is uniform (compressible by QEMU's zero/uniform-page optimization,
//! Section IV-B.2), and how fast the workload redirties pages. That is
//! exactly the information precopy needs, and it is what makes the
//! paper's observation reproducible that "the migration time is not
//! exactly proportional to the memory footprint".

use ninja_sim::Bytes;

/// Default x86 page size.
pub const PAGE_SIZE: Bytes = Bytes::new(4096);

/// Bytes QEMU sends for a compressed (zero/uniform) page: a header plus
/// one byte of pattern, ~9 bytes per 4 KiB page.
pub const COMPRESSED_PAGE_BYTES: u64 = 9;

/// Statistics-level model of one VM's RAM.
///
/// ```
/// use ninja_sim::Bytes;
/// use ninja_vmm::GuestMemory;
/// let mut mem = GuestMemory::new(Bytes::from_gib(20));
/// mem.set_workload(Bytes::from_gib(8), 0.6, 4.0e9); // memtest-like
/// // Zero and uniform pages compress: far less than 20 GiB on the wire.
/// assert!(mem.full_pass_wire_bytes().get() < Bytes::from_gib(6).get());
/// ```
#[derive(Debug, Clone)]
pub struct GuestMemory {
    /// Configured RAM size (the paper's VMs: 20 GiB).
    total: Bytes,
    /// Non-zero, non-compressible resident set of the guest OS itself
    /// (kernel, daemons, page cache). The paper's smallest NPB footprint
    /// is 2.3 GB, which bounds this from above.
    os_resident: Bytes,
    /// Additional bytes touched by the application workload.
    workload_touched: Bytes,
    /// Fraction of the workload's pages that hold uniform data and
    /// compress like zero pages (memtest's repeated fill pattern is
    /// highly uniform; NPB's floating-point state is not).
    workload_uniform_frac: f64,
    /// Rate at which the running workload redirties its pages, bytes/sec.
    dirty_bytes_per_sec: f64,
}

impl GuestMemory {
    /// A VM with `total` RAM and a default 1.5 GiB OS resident set.
    pub fn new(total: Bytes) -> Self {
        let os = Bytes::from_mib(1536).min(total);
        GuestMemory {
            total,
            os_resident: os,
            workload_touched: Bytes::ZERO,
            workload_uniform_frac: 0.0,
            dirty_bytes_per_sec: 0.0,
        }
    }

    /// Override the OS resident set.
    pub fn with_os_resident(mut self, os: Bytes) -> Self {
        assert!(os.get() <= self.total.get(), "resident set exceeds RAM");
        self.os_resident = os;
        self
    }

    /// Returns the total.
    pub fn total(&self) -> Bytes {
        self.total
    }

    /// Returns the os resident.
    pub fn os_resident(&self) -> Bytes {
        self.os_resident
    }

    /// Returns the workload touched.
    pub fn workload_touched(&self) -> Bytes {
        self.workload_touched
    }

    /// Returns the dirty bytes per sec.
    pub fn dirty_bytes_per_sec(&self) -> f64 {
        self.dirty_bytes_per_sec
    }

    /// Install the workload's memory behaviour. `touched` is clamped to
    /// the space left over the OS resident set.
    pub fn set_workload(&mut self, touched: Bytes, uniform_frac: f64, dirty_bytes_per_sec: f64) {
        assert!((0.0..=1.0).contains(&uniform_frac));
        assert!(dirty_bytes_per_sec >= 0.0);
        let avail = self.total.saturating_sub(self.os_resident);
        self.workload_touched = touched.min(avail);
        self.workload_uniform_frac = uniform_frac;
        self.dirty_bytes_per_sec = dirty_bytes_per_sec;
    }

    /// Clear the workload contribution (application exited).
    pub fn clear_workload(&mut self) {
        self.workload_touched = Bytes::ZERO;
        self.workload_uniform_frac = 0.0;
        self.dirty_bytes_per_sec = 0.0;
    }

    /// Total footprint (OS + workload), the quantity Figs. 6-7 sweep.
    pub fn footprint(&self) -> Bytes {
        self.os_resident + self.workload_touched
    }

    /// Bytes that must cross the wire for one full precopy pass:
    /// incompressible pages in full, compressible/zero pages as headers.
    pub fn full_pass_wire_bytes(&self) -> Bytes {
        let workload_full =
            (self.workload_touched.as_f64() * (1.0 - self.workload_uniform_frac)) as u64;
        let incompressible = self.os_resident.get() + workload_full;
        let compressible = self.total.get().saturating_sub(incompressible);
        let headers = Bytes::new(compressible).pages(PAGE_SIZE) * COMPRESSED_PAGE_BYTES;
        Bytes::new(incompressible + headers)
    }

    /// Bytes redirtied over an interval while the guest runs, capped by
    /// the workload's own footprint (it cannot dirty more than it owns).
    pub fn dirtied_over(&self, secs: f64) -> Bytes {
        debug_assert!(secs >= 0.0);
        let d = (self.dirty_bytes_per_sec * secs) as u64;
        Bytes::new(d).min(self.workload_touched.max(self.os_resident))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gib(g: u64) -> Bytes {
        Bytes::from_gib(g)
    }

    #[test]
    fn empty_vm_is_mostly_compressible() {
        let mem = GuestMemory::new(gib(20));
        let wire = mem.full_pass_wire_bytes();
        // 1.5 GiB resident + ~18.5 GiB of zero pages as 9-byte headers.
        let headers = (gib(20) - Bytes::from_mib(1536)).pages(PAGE_SIZE) * COMPRESSED_PAGE_BYTES;
        assert_eq!(wire, Bytes::from_mib(1536) + Bytes::new(headers));
        assert!(wire.get() < gib(2).get(), "zero pages compress well");
    }

    #[test]
    fn wire_bytes_grow_with_footprint_sublinearly_when_uniform() {
        let mut small = GuestMemory::new(gib(20));
        small.set_workload(gib(2), 0.6, 0.0);
        let mut large = GuestMemory::new(gib(20));
        large.set_workload(gib(16), 0.6, 0.0);
        let ws = small.full_pass_wire_bytes().as_f64();
        let wl = large.full_pass_wire_bytes().as_f64();
        assert!(wl > ws, "more footprint -> more wire bytes");
        // 8x footprint but < 8x wire bytes: uniform pages compress away.
        assert!(wl / ws < 8.0, "sublinear: {}", wl / ws);
    }

    #[test]
    fn incompressible_workload_transfers_fully() {
        let mut mem = GuestMemory::new(gib(20));
        mem.set_workload(gib(8), 0.0, 0.0);
        let wire = mem.full_pass_wire_bytes();
        assert!(wire.get() >= mem.footprint().get(), "{wire} >= footprint");
    }

    #[test]
    fn workload_clamped_to_ram() {
        let mut mem = GuestMemory::new(gib(4));
        mem.set_workload(gib(100), 0.0, 0.0);
        assert!(mem.footprint().get() <= gib(4).get());
    }

    #[test]
    fn dirty_is_capped_by_footprint() {
        let mut mem = GuestMemory::new(gib(20));
        mem.set_workload(gib(2), 0.0, 10e9); // 10 GB/s dirty rate
        let d = mem.dirtied_over(100.0);
        assert_eq!(d, gib(2), "cannot dirty more than owned");
    }

    #[test]
    fn clear_workload_resets() {
        let mut mem = GuestMemory::new(gib(20));
        mem.set_workload(gib(8), 0.5, 1e9);
        mem.clear_workload();
        assert_eq!(mem.workload_touched(), Bytes::ZERO);
        assert_eq!(mem.dirtied_over(1.0), Bytes::ZERO);
    }

    #[test]
    fn footprint_composition() {
        let mut mem = GuestMemory::new(gib(20)).with_os_resident(Bytes::from_mib(2355));
        mem.set_workload(gib(4), 0.0, 0.0);
        assert_eq!(mem.footprint(), Bytes::from_mib(2355) + gib(4));
    }
}
