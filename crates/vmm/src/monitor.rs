//! QEMU-monitor-style command interface (QMP analogue).
//!
//! The paper's SymVirt agents drive each QEMU process through its monitor
//! with `device_add`, `device_del`, and `migrate` commands. This module
//! is that surface: a [`QemuMonitor`] executes [`MonitorCommand`]s
//! against the VM pool and data center, sampling realistic durations for
//! each operation and returning them in the reply so the orchestrator
//! can advance virtual time accordingly.

use crate::error::VmmError;
use crate::migration::{plan_precopy, MigrationConfig, PrecopyPlan};
use crate::vm::{VmId, VmPool, VmState};
use ninja_cluster::{DataCenter, DeviceClass, DeviceId, HotplugOp, NodeId};
use ninja_sim::{SimDuration, SimRng, SimTime};

/// A command sent to a VMM's monitor.
#[derive(Debug, Clone)]
pub enum MonitorCommand {
    /// `device_del`: detach the device tagged `tag` from the VM.
    DeviceDel {
        /// The vm.
        vm: VmId,
        /// The tag.
        tag: String,
        /// Skip the resource-safety check (used by failure injection).
        force: bool,
    },
    /// `device_add`: pass a free host IB HCA through to the VM.
    DeviceAddIb {
        /// Target VM.
        vm: VmId,
    },
    /// `migrate`: precopy live migration to another node.
    Migrate {
        /// The vm.
        vm: VmId,
        /// The dst.
        dst: NodeId,
    },
    /// `query-migrate`: statistics of the VM's last migration.
    QueryMigrate {
        /// Target VM.
        vm: VmId,
    },
    /// `stop`: pause the vCPUs.
    Stop {
        /// Target VM.
        vm: VmId,
    },
    /// `cont`: resume the vCPUs.
    Cont {
        /// Target VM.
        vm: VmId,
    },
}

/// The monitor's reply, carrying the sampled durations.
#[derive(Debug, Clone)]
pub enum MonitorReply {
    /// Device removed; `duration` is the hotplug (ACPI) latency.
    DeviceDeleted {
        /// The device.
        device: DeviceId,
        /// The duration.
        duration: SimDuration,
        /// IB resources torn down unsafely (nonzero only under `force`).
        leaked: usize,
    },
    /// Device added; the link trains until `link_active_at`.
    DeviceAdded {
        /// The device.
        device: DeviceId,
        /// The duration.
        duration: SimDuration,
        /// The link active at.
        link_active_at: SimTime,
    },
    /// Migration executed; state has moved to the destination.
    MigrationDone {
        /// The plan.
        plan: PrecopyPlan,
        /// When the migration completes in virtual time.
        completes_at: SimTime,
    },
    /// Reply to `query-migrate`.
    MigrateStatus {
        /// Completed migrations of this VM.
        completed: u32,
        /// Wire bytes of the last migration, if any.
        last_wire_bytes: Option<u64>,
        /// Duration of the last migration, if any.
        last_duration: Option<SimDuration>,
    },
    /// Plain acknowledgement.
    Ok,
}

/// One logical QEMU monitor shared by the SymVirt agents.
#[derive(Debug, Clone, Default)]
pub struct QemuMonitor {
    cfg: MigrationConfig,
}

impl QemuMonitor {
    /// Creates a new instance.
    pub fn new(cfg: MigrationConfig) -> Self {
        QemuMonitor { cfg }
    }

    /// Returns the config.
    pub fn config(&self) -> &MigrationConfig {
        &self.cfg
    }

    /// Execute a command at `now`. `migration_in_progress` tells the
    /// hotplug model to apply the paper's "migration noise" slowdown.
    pub fn execute(
        &self,
        cmd: MonitorCommand,
        pool: &mut VmPool,
        dc: &mut DataCenter,
        now: SimTime,
        rng: &mut SimRng,
        migration_in_progress: bool,
    ) -> Result<MonitorReply, VmmError> {
        match cmd {
            MonitorCommand::DeviceDel { vm, tag, force } => {
                let class = {
                    let dev = dc
                        .devices
                        .find_by_tag_on_vm(vm.0, &tag)
                        .ok_or_else(|| VmmError::NoSuchDeviceTag { tag: tag.clone() })?;
                    dc.devices.get(dev).kind.class()
                };
                let duration =
                    dc.hotplug
                        .duration(HotplugOp::Detach, class, migration_in_progress, rng);
                let (device, leaked) = pool.detach_by_tag(vm, &tag, force, dc)?;
                Ok(MonitorReply::DeviceDeleted {
                    device,
                    duration,
                    leaked,
                })
            }
            MonitorCommand::DeviceAddIb { vm } => {
                let duration = dc.hotplug.duration(
                    HotplugOp::Attach,
                    DeviceClass::IbHca,
                    migration_in_progress,
                    rng,
                );
                // The guest sees the device once the hotplug completes;
                // link training starts then.
                let (device, link_active_at) = pool.attach_ib_hca(vm, dc, now + duration, rng)?;
                Ok(MonitorReply::DeviceAdded {
                    device,
                    duration,
                    link_active_at,
                })
            }
            MonitorCommand::Migrate { vm, dst } => {
                pool.check_migratable(vm, dst, dc)?;
                let guest_running = pool.get(vm).state == VmState::Running;
                let src = pool.get(vm).node;
                let plan = {
                    let mem = &pool.get(vm).memory;
                    // Plan against the raw NIC rate; contention is applied
                    // by the path reservation below.
                    let link_rate = dc.node(src).spec.eth_bandwidth;
                    plan_precopy(mem, guest_running, link_rate, &self.cfg)
                };
                let sender_cap = if self.cfg.rdma_transport {
                    None // RDMA: the wire, not a core, is the bottleneck
                } else {
                    Some(self.cfg.sender_cap)
                };
                let reservation =
                    dc.reserve_migration_path(src, dst, plan.wire_bytes(), sender_cap, now);
                // The migration is gated by both the wire (with queueing)
                // and the page-scan/dirty-iteration schedule.
                let completes_at = reservation.end.max(now + plan.duration());
                pool.complete_migration(vm, dst, dc);
                pool.get_mut(vm).last_migration =
                    Some((plan.wire_bytes().get(), completes_at.since(now)));
                pool.get_mut(vm).state = if guest_running {
                    VmState::Running
                } else {
                    pool.get(vm).state
                };
                Ok(MonitorReply::MigrationDone { plan, completes_at })
            }
            MonitorCommand::QueryMigrate { vm } => {
                let v = pool.get(vm);
                Ok(MonitorReply::MigrateStatus {
                    completed: v.migrations,
                    last_wire_bytes: v.last_migration.map(|(b, _)| b),
                    last_duration: v.last_migration.map(|(_, d)| d),
                })
            }
            MonitorCommand::Stop { vm } => {
                pool.pause(vm)?;
                Ok(MonitorReply::Ok)
            }
            MonitorCommand::Cont { vm } => {
                pool.resume(vm)?;
                Ok(MonitorReply::Ok)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmSpec;
    use ninja_cluster::StorageId;

    struct Fix {
        dc: DataCenter,
        pool: VmPool,
        rng: SimRng,
        mon: QemuMonitor,
        ib_node: NodeId,
        eth_node: NodeId,
        vm: VmId,
    }

    fn fix() -> Fix {
        let (mut dc, ib, eth) = DataCenter::agc();
        let mut pool = VmPool::new();
        let ib_node = dc.cluster(ib).nodes[0];
        let eth_node = dc.cluster(eth).nodes[0];
        let vm = pool
            .create("vm0", VmSpec::paper_vm(), ib_node, StorageId(0), &mut dc)
            .unwrap();
        Fix {
            dc,
            pool,
            rng: SimRng::new(11),
            mon: QemuMonitor::default(),
            ib_node,
            eth_node,
            vm,
        }
    }

    #[test]
    fn device_add_then_del_roundtrip() {
        let mut f = fix();
        let now = SimTime::ZERO;
        let reply = f
            .mon
            .execute(
                MonitorCommand::DeviceAddIb { vm: f.vm },
                &mut f.pool,
                &mut f.dc,
                now,
                &mut f.rng,
                false,
            )
            .unwrap();
        let (device, add_dur) = match reply {
            MonitorReply::DeviceAdded {
                device, duration, ..
            } => (device, duration),
            r => panic!("unexpected {r:?}"),
        };
        assert!(add_dur.as_secs_f64() > 1.0, "IB attach is slow: {add_dur}");
        let tag = f.dc.devices.get(device).tag.clone();
        let reply = f
            .mon
            .execute(
                MonitorCommand::DeviceDel {
                    vm: f.vm,
                    tag,
                    force: false,
                },
                &mut f.pool,
                &mut f.dc,
                now,
                &mut f.rng,
                false,
            )
            .unwrap();
        match reply {
            MonitorReply::DeviceDeleted {
                duration, leaked, ..
            } => {
                assert!(duration.as_secs_f64() > 2.0, "IB detach ~2.8 s: {duration}");
                assert_eq!(leaked, 0);
            }
            r => panic!("unexpected {r:?}"),
        }
        assert!(f.pool.get(f.vm).migratable());
    }

    #[test]
    fn migrate_with_passthrough_fails() {
        let mut f = fix();
        f.mon
            .execute(
                MonitorCommand::DeviceAddIb { vm: f.vm },
                &mut f.pool,
                &mut f.dc,
                SimTime::ZERO,
                &mut f.rng,
                false,
            )
            .unwrap();
        let err = f
            .mon
            .execute(
                MonitorCommand::Migrate {
                    vm: f.vm,
                    dst: f.eth_node,
                },
                &mut f.pool,
                &mut f.dc,
                SimTime::ZERO,
                &mut f.rng,
                false,
            )
            .unwrap_err();
        assert!(matches!(err, VmmError::PassthroughAttached { .. }));
    }

    #[test]
    fn paused_migration_is_single_pass() {
        let mut f = fix();
        f.pool
            .get_mut(f.vm)
            .memory
            .set_workload(ninja_sim::Bytes::from_gib(4), 0.0, 1e9);
        f.mon
            .execute(
                MonitorCommand::Stop { vm: f.vm },
                &mut f.pool,
                &mut f.dc,
                SimTime::ZERO,
                &mut f.rng,
                false,
            )
            .unwrap();
        let reply = f
            .mon
            .execute(
                MonitorCommand::Migrate {
                    vm: f.vm,
                    dst: f.eth_node,
                },
                &mut f.pool,
                &mut f.dc,
                SimTime::ZERO,
                &mut f.rng,
                false,
            )
            .unwrap();
        match reply {
            MonitorReply::MigrationDone { plan, completes_at } => {
                assert_eq!(plan.round_count(), 1, "paused guest: one pass");
                assert!(completes_at > SimTime::ZERO);
            }
            r => panic!("unexpected {r:?}"),
        }
        assert_eq!(f.pool.get(f.vm).node, f.eth_node);
        assert_eq!(f.pool.get(f.vm).state, VmState::SymWait, "stays paused");
    }

    #[test]
    fn migration_noise_flag_slows_hotplug() {
        let mut f = fix();
        let quiet =
            f.dc.hotplug
                .duration(HotplugOp::Detach, DeviceClass::IbHca, false, &mut f.rng);
        let noisy =
            f.dc.hotplug
                .duration(HotplugOp::Detach, DeviceClass::IbHca, true, &mut f.rng);
        assert!(noisy.as_secs_f64() > 2.0 * quiet.as_secs_f64());
        let _ = f.ib_node;
    }

    #[test]
    fn query_migrate_reports_history() {
        let mut f = fix();
        let reply = f
            .mon
            .execute(
                MonitorCommand::QueryMigrate { vm: f.vm },
                &mut f.pool,
                &mut f.dc,
                SimTime::ZERO,
                &mut f.rng,
                false,
            )
            .unwrap();
        match reply {
            MonitorReply::MigrateStatus {
                completed,
                last_wire_bytes,
                ..
            } => {
                assert_eq!(completed, 0);
                assert_eq!(last_wire_bytes, None);
            }
            r => panic!("unexpected {r:?}"),
        }
        f.mon
            .execute(
                MonitorCommand::Migrate {
                    vm: f.vm,
                    dst: f.eth_node,
                },
                &mut f.pool,
                &mut f.dc,
                SimTime::ZERO,
                &mut f.rng,
                false,
            )
            .unwrap();
        let reply = f
            .mon
            .execute(
                MonitorCommand::QueryMigrate { vm: f.vm },
                &mut f.pool,
                &mut f.dc,
                SimTime::ZERO,
                &mut f.rng,
                false,
            )
            .unwrap();
        match reply {
            MonitorReply::MigrateStatus {
                completed,
                last_wire_bytes,
                last_duration,
            } => {
                assert_eq!(completed, 1);
                assert!(last_wire_bytes.unwrap() > 0);
                assert!(last_duration.unwrap().as_secs_f64() > 1.0);
            }
            r => panic!("unexpected {r:?}"),
        }
    }

    #[test]
    fn rdma_migration_is_faster() {
        // Section V: RDMA-based migration removes the CPU bottleneck.
        // Fresh fixture per transport so the link reservations do not
        // interact.
        let run = |rdma: bool| -> f64 {
            let mut f = fix();
            f.pool
                .get_mut(f.vm)
                .memory
                .set_workload(ninja_sim::Bytes::from_gib(8), 0.0, 0.0);
            let mon = QemuMonitor::new(crate::migration::MigrationConfig {
                rdma_transport: rdma,
                ..crate::migration::MigrationConfig::default()
            });
            let dst = f.eth_node;
            let reply = mon
                .execute(
                    MonitorCommand::Migrate { vm: f.vm, dst },
                    &mut f.pool,
                    &mut f.dc,
                    SimTime::ZERO,
                    &mut f.rng,
                    false,
                )
                .unwrap();
            match reply {
                MonitorReply::MigrationDone { completes_at, .. } => completes_at.as_secs_f64(),
                r => panic!("unexpected {r:?}"),
            }
        };
        let t_tcp = run(false);
        let t_rdma = run(true);
        assert!(
            t_rdma < 0.5 * t_tcp,
            "rdma migration {t_rdma} vs tcp {t_tcp}"
        );
    }

    #[test]
    fn cont_resumes() {
        let mut f = fix();
        f.mon
            .execute(
                MonitorCommand::Stop { vm: f.vm },
                &mut f.pool,
                &mut f.dc,
                SimTime::ZERO,
                &mut f.rng,
                false,
            )
            .unwrap();
        f.mon
            .execute(
                MonitorCommand::Cont { vm: f.vm },
                &mut f.pool,
                &mut f.dc,
                SimTime::ZERO,
                &mut f.rng,
                false,
            )
            .unwrap();
        assert_eq!(f.pool.get(f.vm).state, VmState::Running);
    }
}
