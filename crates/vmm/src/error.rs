//! VMM error types.

use ninja_cluster::{DeviceId, NodeId, StorageId};
use std::fmt;

/// Errors surfaced by VM lifecycle and migration operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmmError {
    /// Live migration attempted while a VMM-bypass device is attached —
    /// the fundamental limitation the paper works around ("VMM-bypass I/O
    /// technologies ... make VM migration impossible").
    PassthroughAttached {
        /// The offending device.
        device: DeviceId,
    },
    /// The destination cannot reach the VM's disk (no shared NFS mount).
    StorageNotReachable {
        /// The storage.
        storage: StorageId,
        /// The dst.
        dst: NodeId,
    },
    /// Destination node lacks memory capacity for the VM.
    InsufficientCapacity {
        /// The dst.
        dst: NodeId,
    },
    /// Operation requires the VM to be in a paused/SymVirt-wait state.
    NotPaused,
    /// Operation requires a running VM.
    NotRunning,
    /// The VM has no device with the requested tag.
    NoSuchDeviceTag {
        /// The tag.
        tag: String,
    },
    /// No free device of the requested class on the node.
    NoFreeDevice {
        /// The node.
        node: NodeId,
    },
    /// The device is still holding IB resources (QPs/MRs); detaching now
    /// would lose in-flight data. The CRS pre-checkpoint must release
    /// them first.
    DeviceBusy {
        /// The device.
        device: DeviceId,
        /// The leaked.
        leaked: usize,
    },
    /// The monitor connection is gone (VM destroyed).
    NoSuchVm,
    /// A QMP command got no reply within the command deadline (fault
    /// injection / wedged QEMU). Retryable by the caller.
    MonitorTimeout {
        /// The command that timed out (phase name).
        command: String,
    },
    /// QEMU aborted the live migration mid-stream (fault injection /
    /// precopy failure). The guest is intact on the source.
    MigrationAborted,
}

impl fmt::Display for VmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmmError::PassthroughAttached { device } => write!(
                f,
                "cannot migrate: VMM-bypass device {device:?} is attached (detach it first)"
            ),
            VmmError::StorageNotReachable { storage, dst } => write!(
                f,
                "destination {dst:?} cannot reach shared storage {storage:?}"
            ),
            VmmError::InsufficientCapacity { dst } => {
                write!(f, "destination {dst:?} lacks memory capacity")
            }
            VmmError::NotPaused => write!(f, "VM must be paused (SymVirt wait) for this operation"),
            VmmError::NotRunning => write!(f, "VM is not running"),
            VmmError::NoSuchDeviceTag { tag } => write!(f, "no attached device tagged '{tag}'"),
            VmmError::NoFreeDevice { node } => {
                write!(f, "no free passthrough device on node {node:?}")
            }
            VmmError::DeviceBusy { device, leaked } => write!(
                f,
                "device {device:?} still holds {leaked} IB resources; unsafe to detach"
            ),
            VmmError::NoSuchVm => write!(f, "no such VM"),
            VmmError::MonitorTimeout { command } => {
                write!(
                    f,
                    "QMP command '{command}' timed out (monitor unresponsive)"
                )
            }
            VmmError::MigrationAborted => {
                write!(
                    f,
                    "live migration aborted mid-stream; guest intact on source"
                )
            }
        }
    }
}

impl std::error::Error for VmmError {}

#[cfg(test)]
mod tests {
    use super::*;
    use ninja_cluster::{DeviceId, NodeId, StorageId};

    #[test]
    fn messages_name_the_culprit() {
        let e = VmmError::PassthroughAttached {
            device: DeviceId(3),
        };
        assert!(e.to_string().contains("DeviceId(3)"));
        assert!(e.to_string().contains("detach it first"));
        let e = VmmError::StorageNotReachable {
            storage: StorageId(1),
            dst: NodeId(9),
        };
        assert!(e.to_string().contains("NodeId(9)"));
        let e = VmmError::DeviceBusy {
            device: DeviceId(2),
            leaked: 7,
        };
        assert!(e.to_string().contains("7 IB resources"));
        let e = VmmError::NoSuchDeviceTag { tag: "vf0".into() };
        assert!(e.to_string().contains("'vf0'"));
        let e = VmmError::MonitorTimeout {
            command: "device_del".into(),
        };
        assert!(e.to_string().contains("'device_del'"));
        assert!(e.to_string().contains("timed out"));
        assert!(VmmError::MigrationAborted.to_string().contains("aborted"));
    }

    #[test]
    fn error_trait_object_safe() {
        let e: Box<dyn std::error::Error> = Box::new(VmmError::NotPaused);
        assert!(e.to_string().contains("SymVirt wait"));
    }
}
