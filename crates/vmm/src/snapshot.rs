//! VM checkpoint images (qcow2 internal snapshots on NFS).
//!
//! The paper's proactive fault-tolerance use case: "using proactive and
//! reactive fault tolerant systems, as shown in \[7\], we can restart VMs
//! on an Ethernet cluster from checkpointed VM images on an Infiniband
//! cluster" (Section II-A). The testbed's "VM image was created using
//! the qcow2 format which enabled us to make snapshots internally"
//! (Section IV-A).
//!
//! A snapshot captures the VM's device-model state plus its RAM image —
//! compressed with the same zero/uniform-page scheme the migration path
//! uses, and written to (later read from) the shared NFS export, whose
//! bandwidth gates the save/restore time.

use crate::memory::GuestMemory;
use crate::vm::{Vm, VmSpec};
use ninja_cluster::StorageId;
use ninja_sim::{Bandwidth, Bytes, SimDuration, SimTime};

/// Identifier of a stored snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SnapshotId(pub u32);

/// A saved VM image.
#[derive(Debug, Clone)]
pub struct VmSnapshot {
    /// Store-assigned identifier.
    pub id: SnapshotId,
    /// Name of the VM at save time.
    pub vm_name: String,
    /// Hardware shape to restore with.
    pub spec: VmSpec,
    /// Memory statistics at save time (restored verbatim).
    pub memory: GuestMemory,
    /// The NFS export holding the image (restore requires reachability).
    pub disk: StorageId,
    /// When the snapshot was taken.
    pub taken_at: SimTime,
    /// On-disk image size (compressed RAM + device state).
    pub image_bytes: Bytes,
}

/// NFS throughput for streaming qcow2 snapshot data. NFSv3 over the
/// 10 GbE network in the paper's testbed sustains roughly 0.9 GB/s.
pub const NFS_STREAM_BW: f64 = 0.9e9;

/// Fixed device-model state per snapshot (CPU, APIC, virtio rings...).
const DEVICE_STATE_BYTES: u64 = 8 << 20;

/// The snapshot repository on shared storage.
#[derive(Debug, Default)]
pub struct SnapshotStore {
    snapshots: Vec<VmSnapshot>,
}

impl SnapshotStore {
    /// An empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Save a snapshot of `vm` at `now`. The VM must be paused (callers
    /// go through the SymVirt choreography); returns the id and how long
    /// the qcow2 write takes at NFS speed.
    pub fn save(&mut self, vm: &Vm, now: SimTime) -> (SnapshotId, SimDuration) {
        let image_bytes = vm.memory.full_pass_wire_bytes() + Bytes::new(DEVICE_STATE_BYTES);
        let id = SnapshotId(self.snapshots.len() as u32);
        self.snapshots.push(VmSnapshot {
            id,
            vm_name: vm.name.clone(),
            spec: vm.spec.clone(),
            memory: vm.memory.clone(),
            disk: vm.disk,
            taken_at: now,
            image_bytes,
        });
        let duration = Bandwidth::from_bytes_per_sec(NFS_STREAM_BW).transfer_time(image_bytes);
        (id, duration)
    }

    /// Borrow a stored snapshot.
    pub fn get(&self, id: SnapshotId) -> &VmSnapshot {
        &self.snapshots[id.0 as usize]
    }

    /// Time to stream a snapshot back from NFS.
    pub fn restore_duration(&self, id: SnapshotId) -> SimDuration {
        Bandwidth::from_bytes_per_sec(NFS_STREAM_BW).transfer_time(self.get(id).image_bytes)
    }

    /// Number of stored snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Total bytes held on the NFS export.
    pub fn stored_bytes(&self) -> Bytes {
        self.snapshots.iter().map(|s| s.image_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmPool;
    use ninja_cluster::DataCenter;

    fn paused_vm() -> (DataCenter, VmPool, crate::vm::VmId) {
        let (mut dc, ib, _) = DataCenter::agc();
        let mut pool = VmPool::new();
        let vm = pool
            .create(
                "vm0",
                VmSpec::paper_vm(),
                dc.cluster(ib).nodes[0],
                StorageId(0),
                &mut dc,
            )
            .unwrap();
        pool.get_mut(vm)
            .memory
            .set_workload(Bytes::from_gib(4), 0.5, 0.0);
        pool.pause(vm).unwrap();
        (dc, pool, vm)
    }

    #[test]
    fn save_captures_memory_stats() {
        let (_dc, pool, vm) = paused_vm();
        let mut store = SnapshotStore::new();
        let (id, dur) = store.save(pool.get(vm), SimTime::ZERO);
        let snap = store.get(id);
        assert_eq!(snap.vm_name, "vm0");
        assert_eq!(snap.memory.workload_touched(), Bytes::from_gib(4));
        assert!(
            snap.image_bytes.get() > Bytes::from_gib(3).get(),
            "{}",
            snap.image_bytes
        );
        // ~3.5-4 GiB at 0.9 GB/s: a few seconds.
        assert!((2.0..10.0).contains(&dur.as_secs_f64()), "{dur}");
    }

    #[test]
    fn image_is_compressed() {
        let (_dc, pool, vm) = paused_vm();
        let mut store = SnapshotStore::new();
        let (id, _) = store.save(pool.get(vm), SimTime::ZERO);
        // 20 GiB RAM, but mostly zero pages + half-uniform workload.
        assert!(store.get(id).image_bytes.get() < Bytes::from_gib(5).get());
    }

    #[test]
    fn restore_duration_symmetric_with_save() {
        let (_dc, pool, vm) = paused_vm();
        let mut store = SnapshotStore::new();
        let (id, save_dur) = store.save(pool.get(vm), SimTime::ZERO);
        assert_eq!(store.restore_duration(id), save_dur);
    }

    #[test]
    fn store_accounting() {
        let (_dc, pool, vm) = paused_vm();
        let mut store = SnapshotStore::new();
        assert!(store.is_empty());
        let (a, _) = store.save(pool.get(vm), SimTime::ZERO);
        let (b, _) = store.save(pool.get(vm), SimTime::ZERO);
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
        assert_eq!(
            store.stored_bytes(),
            store.get(a).image_bytes + store.get(b).image_bytes
        );
    }
}
