//! The guest operating system's view of device hotplug.
//!
//! "During phases 1) and 3), the guest OS needs to be able to recognize
//! the addition and removal of a device to migrate a VM safely.
//! Therefore, a period of time so that a PCI hotplug mechanism, i.e.,
//! the ACPI hotplug PCI controller driver `acpiphp`, can work on a
//! guest OS is required." (Section III-B.)
//!
//! This module decomposes the calibrated hotplug latencies of
//! [`ninja_cluster::calib`] into the guest-visible stages — ACPI
//! notification, kernel hotplug processing, and driver probe/unbind —
//! and provides [`GuestPciView`], the state machine a guest traverses
//! for each device. A unit test cross-checks that the per-stage sums
//! reproduce the Table II totals, keeping the two layers consistent.

use ninja_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Which guest driver handles a device class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GuestDriver {
    /// `mlx4_core`/`mlx4_ib` for the ConnectX HCA.
    Mlx4,
    /// `virtio_net` for the para-virtualized NIC.
    VirtioNet,
}

/// Per-stage timing of a hotplug as the guest experiences it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriverTimings {
    /// ACPI notification + `acpiphp` slot handling.
    pub acpi_event: SimDuration,
    /// Kernel PCI core work (config-space scan, BAR assignment /
    /// release).
    pub kernel_pci: SimDuration,
    /// Driver probe on attach (firmware init for mlx4 is the dominant
    /// cost).
    pub probe: SimDuration,
    /// Driver unbind on detach (mlx4 tears down firmware contexts,
    /// EQs/CQs; virtio is nearly instant).
    pub unbind: SimDuration,
}

impl DriverTimings {
    /// Stage timings for a driver, decomposing the calibrated totals:
    /// attach(IB) = 1.12 s and detach(IB) = 2.76 s (see
    /// `ninja_cluster::calib::HotplugCalib`).
    pub fn for_driver(driver: GuestDriver) -> Self {
        match driver {
            GuestDriver::Mlx4 => DriverTimings {
                acpi_event: SimDuration::from_millis(60),
                kernel_pci: SimDuration::from_millis(160),
                probe: SimDuration::from_millis(900), // firmware boot
                unbind: SimDuration::from_millis(2540), // context teardown
            },
            GuestDriver::VirtioNet => DriverTimings {
                acpi_event: SimDuration::from_millis(20),
                kernel_pci: SimDuration::from_millis(20),
                probe: SimDuration::from_millis(30),
                unbind: SimDuration::from_millis(20),
            },
        }
    }

    /// Total guest-side attach latency (ACPI + kernel + probe).
    pub fn attach_total(&self) -> SimDuration {
        self.acpi_event + self.kernel_pci + self.probe
    }

    /// Total guest-side detach latency (unbind + kernel + ACPI eject).
    pub fn detach_total(&self) -> SimDuration {
        self.unbind + self.kernel_pci + self.acpi_event
    }
}

/// Guest-visible state of one PCI function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestDeviceState {
    /// ACPI has signalled insertion; the kernel is scanning.
    Enumerating {
        /// When the driver will be bound and the device usable.
        bound_at: SimTime,
    },
    /// Driver bound; the device is usable by applications.
    Bound,
    /// ACPI eject in progress; driver unbinding.
    Removing {
        /// When the slot will be empty.
        gone_at: SimTime,
    },
}

/// The guest kernel's device table for hotpluggable functions.
#[derive(Debug, Default)]
pub struct GuestPciView {
    devices: BTreeMap<String, (GuestDriver, GuestDeviceState)>,
}

impl GuestPciView {
    /// An empty view (freshly booted guest).
    pub fn new() -> Self {
        Self::default()
    }

    /// ACPI insertion event for a device with the given slot name.
    /// Returns when the driver will be bound.
    pub fn acpi_insert(
        &mut self,
        slot: impl Into<String>,
        driver: GuestDriver,
        now: SimTime,
    ) -> SimTime {
        let bound_at = now + DriverTimings::for_driver(driver).attach_total();
        self.devices.insert(
            slot.into(),
            (driver, GuestDeviceState::Enumerating { bound_at }),
        );
        bound_at
    }

    /// ACPI eject request. Returns when the slot will be empty, or
    /// `None` if no such device.
    pub fn acpi_eject(&mut self, slot: &str, now: SimTime) -> Option<SimTime> {
        let (driver, _) = self.devices.get(slot)?;
        let gone_at = now + DriverTimings::for_driver(*driver).detach_total();
        self.devices.insert(
            slot.to_string(),
            (*driver, GuestDeviceState::Removing { gone_at }),
        );
        Some(gone_at)
    }

    /// The state of a slot as observed at `now` (Enumerating resolves to
    /// Bound once the probe completes; Removing resolves to absent).
    pub fn state_at(&self, slot: &str, now: SimTime) -> Option<GuestDeviceState> {
        let (_, state) = self.devices.get(slot)?;
        Some(match *state {
            GuestDeviceState::Enumerating { bound_at } if now >= bound_at => {
                GuestDeviceState::Bound
            }
            GuestDeviceState::Removing { gone_at } if now >= gone_at => return None,
            s => s,
        })
    }

    /// Is the device usable (driver bound) at `now`? This is the
    /// "confirm" the application performs in Fig. 4 before proceeding.
    pub fn confirm(&self, slot: &str, now: SimTime) -> bool {
        matches!(self.state_at(slot, now), Some(GuestDeviceState::Bound))
    }

    /// Number of slots the kernel currently tracks.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninja_cluster::HotplugCalib;

    fn t(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }

    /// The per-stage decomposition must reproduce the cluster layer's
    /// calibrated (best-case) totals exactly — the two models describe
    /// the same hardware.
    #[test]
    fn stages_sum_to_calibrated_totals() {
        let calib = HotplugCalib::default();
        let mlx4 = DriverTimings::for_driver(GuestDriver::Mlx4);
        assert_eq!(mlx4.attach_total(), calib.attach_ib);
        assert_eq!(mlx4.detach_total(), calib.detach_ib);
        let virtio = DriverTimings::for_driver(GuestDriver::VirtioNet);
        assert_eq!(virtio.attach_total(), calib.attach_eth);
        assert_eq!(virtio.detach_total(), calib.detach_eth);
    }

    #[test]
    fn insert_enumerates_then_binds() {
        let mut view = GuestPciView::new();
        let bound_at = view.acpi_insert("0000:00:05.0", GuestDriver::Mlx4, t(10.0));
        assert!(matches!(
            view.state_at("0000:00:05.0", t(10.5)),
            Some(GuestDeviceState::Enumerating { .. })
        ));
        assert!(!view.confirm("0000:00:05.0", t(10.5)));
        assert!(view.confirm("0000:00:05.0", bound_at));
        // mlx4 attach is 1.12 s.
        assert!((bound_at.since(t(10.0)).as_secs_f64() - 1.12).abs() < 1e-9);
    }

    #[test]
    fn eject_removes_after_unbind() {
        let mut view = GuestPciView::new();
        let bound_at = view.acpi_insert("slot1", GuestDriver::Mlx4, t(0.0));
        let gone_at = view.acpi_eject("slot1", bound_at).unwrap();
        assert!(matches!(
            view.state_at("slot1", bound_at),
            Some(GuestDeviceState::Removing { .. })
        ));
        assert_eq!(view.state_at("slot1", gone_at), None);
        // mlx4 detach is 2.76 s.
        assert!((gone_at.since(bound_at).as_secs_f64() - 2.76).abs() < 1e-9);
    }

    #[test]
    fn virtio_is_fast() {
        let mut view = GuestPciView::new();
        let bound_at = view.acpi_insert("net0", GuestDriver::VirtioNet, t(0.0));
        assert!(bound_at.as_secs_f64() < 0.1);
    }

    #[test]
    fn eject_unknown_slot_is_none() {
        let mut view = GuestPciView::new();
        assert_eq!(view.acpi_eject("ghost", t(0.0)), None);
        assert!(view.is_empty());
    }
}
