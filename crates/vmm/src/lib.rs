//! # ninja-vmm — QEMU/KVM-like virtual machine monitor model
//!
//! The host-side half of the paper's mechanism:
//!
//! * [`memory`] — guest RAM as migration statistics (footprint, uniform
//!   fraction, dirty rate) with QEMU's zero/uniform-page compression;
//! * [`vm`] — VM lifecycle, passthrough device attachment, the
//!   "VMM-bypass devices block migration" invariant, per-VM transport
//!   availability;
//! * [`migration`] — the precopy planner (CPU-bound ~1.3 Gb/s sender,
//!   full-RAM page scans, dirty-round iteration, downtime accounting);
//! * [`monitor`] — the QMP-style command surface (`device_add`,
//!   `device_del`, `migrate`, `stop`, `cont`) the SymVirt agents drive;
//! * [`error`] — typed failures for every rejected operation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod guestos;
pub mod memory;
pub mod migration;
pub mod monitor;
pub mod snapshot;
pub mod vm;

pub use error::VmmError;
pub use guestos::{DriverTimings, GuestDeviceState, GuestDriver, GuestPciView};
pub use memory::{GuestMemory, COMPRESSED_PAGE_BYTES, PAGE_SIZE};
pub use migration::{plan_precopy, MigrationConfig, PrecopyPlan, PrecopyRound};
pub use monitor::{MonitorCommand, MonitorReply, QemuMonitor};
pub use snapshot::{SnapshotId, SnapshotStore, VmSnapshot, NFS_STREAM_BW};
pub use vm::{Vm, VmId, VmPool, VmSpec, VmState};
