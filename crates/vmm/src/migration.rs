//! Precopy live-migration planner (QEMU-style).
//!
//! The paper uses QEMU/KVM's default precopy live migration. Its observed
//! properties, all modelled here:
//!
//! * the sender is a single TCP thread that saturates one core at about
//!   **1.3 Gb/s** (Section V), regardless of the 10 GbE link underneath;
//! * the VMM **traverses the whole of guest memory** each pass, so even
//!   a mostly-zero 20 GiB guest pays a scan cost (Section IV-B.2);
//! * zero/uniform pages are **compressed** to a small header, making
//!   migration time sublinear in RAM size;
//! * in Ninja migration the guest is **paused** (SymVirt wait) for the
//!   whole procedure, so precopy converges in a single pass; with a
//!   running guest the planner iterates dirty rounds like real QEMU —
//!   the ablation benches compare both.

use crate::memory::GuestMemory;
use ninja_sim::{Bandwidth, Bytes, SimDuration, SimTime, Span, SpanBuilder};

/// Tunables of the migration engine.
#[derive(Debug, Clone)]
pub struct MigrationConfig {
    /// CPU-bound sender throughput cap (Section V: "less than 1.3 Gbps
    /// ... the utilization of one CPU core is saturated at 100%").
    pub sender_cap: Bandwidth,
    /// Rate at which the VMM walks guest pages (zero-page detection is a
    /// memory-bandwidth-bound scan).
    pub page_scan_rate: Bandwidth,
    /// Precopy stops iterating when the remaining dirty set transfers
    /// within this bound (then does the stop-and-copy).
    pub downtime_limit: SimDuration,
    /// Safety valve on precopy rounds (QEMU eventually forces
    /// convergence).
    pub max_rounds: u32,
    /// QEMU's zero/uniform-page compression (Section IV-B.2). Disabled
    /// only by the ablation benches, to show migration time becoming
    /// linear in RAM size.
    pub zero_page_compression: bool,
    /// RDMA-based migration (Section V: "RDMA-based migration can
    /// reduce CPU utilization and improve the throughput, compared with
    /// TCP/IP-based migration" [20, 21]). Lifts the single-threaded
    /// TCP sender's CPU cap; the wire then runs at link rate.
    pub rdma_transport: bool,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            sender_cap: Bandwidth::from_gbps(1.3),
            page_scan_rate: Bandwidth::from_bytes_per_sec(6.0e9),
            downtime_limit: SimDuration::from_millis(300),
            max_rounds: 30,
            zero_page_compression: true,
            rdma_transport: false,
        }
    }
}

/// One precopy round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecopyRound {
    /// Bytes put on the wire this round (after compression).
    pub wire_bytes: Bytes,
    /// Guest bytes walked this round.
    pub scanned: Bytes,
    /// Wall-clock duration of the round.
    pub duration: SimDuration,
}

/// The planned migration.
#[derive(Debug, Clone)]
pub struct PrecopyPlan {
    /// Every round, first to last (the last round is the stop-and-copy).
    pub rounds: Vec<PrecopyRound>,
    /// Whether precopy converged under the downtime limit (vs. being
    /// forced at `max_rounds`).
    pub converged: bool,
}

impl PrecopyPlan {
    /// Total bytes on the wire.
    pub fn wire_bytes(&self) -> Bytes {
        self.rounds.iter().map(|r| r.wire_bytes).sum()
    }

    /// Total wall-clock migration time.
    pub fn duration(&self) -> SimDuration {
        self.rounds.iter().map(|r| r.duration).sum()
    }

    /// Guest-observed downtime: the final stop-and-copy round (for a
    /// guest paused throughout, this equals the whole duration).
    pub fn downtime(&self) -> SimDuration {
        self.rounds
            .last()
            .map(|r| r.duration)
            .unwrap_or(SimDuration::ZERO)
    }

    /// Returns the round count.
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// The executed plan as a typed telemetry span (component `vmm`,
    /// name `precopy`) starting at `started`, labeled with the round
    /// count, wire bytes and convergence outcome.
    pub fn to_span(&self, started: SimTime) -> Span {
        SpanBuilder::new("vmm", "precopy", started)
            .label("rounds", self.round_count().to_string())
            .label("wire_bytes", self.wire_bytes().get().to_string())
            .label("converged", self.converged.to_string())
            .end(started + self.duration())
    }
}

/// Plan a precopy migration of `mem` at `link_rate` (the reserved path
/// bandwidth; the sender cap is applied on top). `guest_running` selects
/// between Ninja's paused-guest single pass and iterative precopy.
///
/// ```
/// use ninja_sim::{Bandwidth, Bytes};
/// use ninja_vmm::{plan_precopy, GuestMemory, MigrationConfig};
/// let mut mem = GuestMemory::new(Bytes::from_gib(20));
/// mem.set_workload(Bytes::from_gib(4), 0.0, 1e9);
/// let cfg = MigrationConfig::default();
/// // Ninja pauses the guest: one pass, downtime == duration.
/// let plan = plan_precopy(&mem, false, Bandwidth::from_gbps(10.0), &cfg);
/// assert_eq!(plan.round_count(), 1);
/// assert_eq!(plan.downtime(), plan.duration());
/// ```
pub fn plan_precopy(
    mem: &GuestMemory,
    guest_running: bool,
    link_rate: Bandwidth,
    cfg: &MigrationConfig,
) -> PrecopyPlan {
    // The TCP sender is CPU-bound at ~1.3 Gb/s; RDMA offloads the copy
    // to the HCA and runs at link rate.
    let rate = if cfg.rdma_transport {
        link_rate
    } else {
        cfg.sender_cap.min(link_rate)
    };
    let mut rounds = Vec::new();

    // Round 0: full pass — walk all of RAM, send the incompressible part
    // (or, with compression disabled, every page).
    let wire0 = if cfg.zero_page_compression {
        mem.full_pass_wire_bytes()
    } else {
        mem.total()
    };
    let scan0 = mem.total();
    let d0 = rate
        .transfer_time(wire0)
        .max(cfg.page_scan_rate.transfer_time(scan0));
    rounds.push(PrecopyRound {
        wire_bytes: wire0,
        scanned: scan0,
        duration: d0,
    });

    if !guest_running {
        // Paused guest (SymVirt wait): nothing gets dirtied; one pass.
        return PrecopyPlan {
            rounds,
            converged: true,
        };
    }

    // Iterative rounds: each round must resend what the guest dirtied
    // during the previous round. Dirtied pages are application data and
    // do not compress.
    let mut prev = d0;
    let mut converged = false;
    for _ in 1..=cfg.max_rounds {
        let dirty = mem.dirtied_over(prev.as_secs_f64());
        let xfer = rate.transfer_time(dirty);
        let dur = xfer.max(cfg.page_scan_rate.transfer_time(dirty));
        if dirty.is_zero() {
            converged = true;
            break;
        }
        rounds.push(PrecopyRound {
            wire_bytes: dirty,
            scanned: dirty,
            duration: dur,
        });
        if xfer <= cfg.downtime_limit {
            // This round *was* the stop-and-copy.
            converged = true;
            break;
        }
        prev = dur;
    }
    PrecopyPlan { rounds, converged }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm_mem(workload_gib: u64, uniform: f64, dirty_rate: f64) -> GuestMemory {
        let mut m = GuestMemory::new(Bytes::from_gib(20));
        m.set_workload(Bytes::from_gib(workload_gib), uniform, dirty_rate);
        m
    }

    fn link() -> Bandwidth {
        Bandwidth::from_gbps(10.0)
    }

    #[test]
    fn paused_guest_single_pass() {
        let mem = vm_mem(8, 0.0, 5e9); // high dirty rate, but paused
        let plan = plan_precopy(&mem, false, link(), &MigrationConfig::default());
        assert_eq!(plan.round_count(), 1);
        assert!(plan.converged);
        assert_eq!(plan.downtime(), plan.duration());
    }

    #[test]
    fn sender_cap_gates_rate() {
        let mem = vm_mem(8, 0.0, 0.0);
        let cfg = MigrationConfig::default();
        let plan = plan_precopy(&mem, false, link(), &cfg);
        // Expected: wire bytes at 1.3 Gb/s, since that's below scan floor.
        let expect = cfg.sender_cap.transfer_time(plan.wire_bytes());
        let scan = cfg.page_scan_rate.transfer_time(mem.total());
        assert_eq!(plan.duration(), expect.max(scan));
        assert!(
            expect > scan,
            "1.3 Gb/s of ~8 GiB dominates the 20 GiB scan"
        );
    }

    #[test]
    fn scan_floor_for_empty_vm() {
        // A near-empty 20 GiB VM: wire bytes tiny, but the scan of all
        // RAM sets the floor ("the VMM traverses the whole of the guest
        // OS's memory").
        let mem = GuestMemory::new(Bytes::from_gib(20));
        let cfg = MigrationConfig::default();
        let plan = plan_precopy(&mem, false, link(), &cfg);
        let scan = cfg.page_scan_rate.transfer_time(mem.total());
        assert!(plan.duration() >= scan);
    }

    #[test]
    fn migration_time_grows_sublinearly_with_uniform_workload() {
        // The memtest pattern: footprint grows 2 -> 16 GiB, much of it
        // uniform. Time must grow, but by less than 8x.
        let cfg = MigrationConfig::default();
        let t2 = plan_precopy(&vm_mem(2, 0.6, 0.0), false, link(), &cfg).duration();
        let t16 = plan_precopy(&vm_mem(16, 0.6, 0.0), false, link(), &cfg).duration();
        assert!(t16 > t2);
        let ratio = t16.as_secs_f64() / t2.as_secs_f64();
        assert!(ratio < 8.0, "sublinear, got {ratio}");
    }

    #[test]
    fn running_guest_iterates() {
        // 2 GiB workload redirtying at 80 MB/s against ~160 MB/s
        // effective sender: needs multiple rounds, converges since each
        // round roughly halves.
        let mem = vm_mem(2, 0.0, 0.08e9);
        let cfg = MigrationConfig::default();
        let plan = plan_precopy(&mem, true, link(), &cfg);
        assert!(plan.round_count() > 1, "rounds: {}", plan.round_count());
        assert!(plan.converged);
        assert!(plan.wire_bytes().get() > mem.full_pass_wire_bytes().get());
    }

    #[test]
    fn hot_guest_hits_round_cap() {
        // Dirtying faster than the sender drains: never converges, the
        // round cap forces it.
        let mem = vm_mem(8, 0.0, 3e9);
        let cfg = MigrationConfig::default();
        let plan = plan_precopy(&mem, true, link(), &cfg);
        assert!(!plan.converged);
        assert_eq!(plan.round_count() as u32, 1 + cfg.max_rounds);
    }

    #[test]
    fn paused_beats_running_on_wire_bytes() {
        let mem = vm_mem(4, 0.0, 0.5e9);
        let cfg = MigrationConfig::default();
        let paused = plan_precopy(&mem, false, link(), &cfg);
        let running = plan_precopy(&mem, true, link(), &cfg);
        assert!(paused.wire_bytes() < running.wire_bytes());
    }

    #[test]
    fn rdma_transport_lifts_the_sender_cap() {
        // Section V's optimization: same memory, same link, the RDMA
        // path is gated by the wire instead of one saturated core.
        let mem = vm_mem(8, 0.0, 0.0);
        let tcp_cfg = MigrationConfig::default();
        let rdma_cfg = MigrationConfig {
            rdma_transport: true,
            ..MigrationConfig::default()
        };
        let tcp = plan_precopy(&mem, false, link(), &tcp_cfg).duration();
        let rdma = plan_precopy(&mem, false, link(), &rdma_cfg).duration();
        assert!(
            rdma.as_secs_f64() < 0.3 * tcp.as_secs_f64(),
            "rdma {rdma} vs tcp {tcp}"
        );
        // RDMA is still floored by the page scan.
        let cfgd = MigrationConfig::default();
        let scan = cfgd.page_scan_rate.transfer_time(mem.total());
        assert!(rdma >= scan);
    }

    #[test]
    fn plan_exports_as_span() {
        let mem = vm_mem(4, 0.0, 0.0);
        let plan = plan_precopy(&mem, false, link(), &MigrationConfig::default());
        let t0 = SimTime::from_nanos(1_000);
        let span = plan.to_span(t0);
        assert_eq!(span.component, "vmm");
        assert_eq!(span.name, "precopy");
        assert_eq!(span.start, t0);
        assert_eq!(span.end, t0 + plan.duration());
        assert_eq!(span.label("rounds"), Some("1"));
        assert_eq!(span.label("converged"), Some("true"));
        assert_eq!(
            span.label("wire_bytes"),
            Some(plan.wire_bytes().get().to_string().as_str())
        );
    }

    #[test]
    fn downtime_under_limit_when_converged() {
        let mem = vm_mem(2, 0.0, 0.1e9);
        let cfg = MigrationConfig::default();
        let plan = plan_precopy(&mem, true, link(), &cfg);
        assert!(plan.converged);
        let final_xfer = cfg
            .sender_cap
            .min(link())
            .transfer_time(plan.rounds.last().unwrap().wire_bytes);
        assert!(final_xfer <= cfg.downtime_limit, "{final_xfer}");
    }
}
