//! SymVirt error types.

use ninja_mpi::MpiError;
use ninja_vmm::{VmId, VmmError};
use std::fmt;

/// Failures of the SymVirt control plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymVirtError {
    /// `wait_all` found a VM that has not issued SymVirt wait — the
    /// controller must not manipulate devices under a running guest.
    VmNotWaiting(VmId),
    /// An underlying VMM operation failed.
    Vmm(VmmError),
    /// An underlying MPI runtime operation failed.
    Runtime(MpiError),
    /// The destination host list is empty.
    EmptyHostlist,
    /// An agent lost its QEMU monitor connection.
    AgentDisconnected(VmId),
    /// One or more agents lost their QEMU monitor connections; every
    /// failed VM is listed (sorted), so an operator sees the full blast
    /// radius in one report rather than one VM per attempt.
    AgentsDisconnected(Vec<VmId>),
}

impl fmt::Display for SymVirtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymVirtError::VmNotWaiting(vm) => {
                write!(f, "VM {vm:?} has not issued SymVirt wait")
            }
            SymVirtError::Vmm(e) => write!(f, "VMM error: {e}"),
            SymVirtError::Runtime(e) => write!(f, "MPI runtime error: {e}"),
            SymVirtError::EmptyHostlist => write!(f, "empty destination host list"),
            SymVirtError::AgentDisconnected(vm) => {
                write!(f, "SymVirt agent for {vm:?} lost its monitor connection")
            }
            SymVirtError::AgentsDisconnected(vms) => {
                write!(
                    f,
                    "{} SymVirt agent(s) lost their monitor connections: {vms:?}",
                    vms.len()
                )
            }
        }
    }
}

impl std::error::Error for SymVirtError {}

impl From<VmmError> for SymVirtError {
    fn from(e: VmmError) -> Self {
        SymVirtError::Vmm(e)
    }
}

impl From<MpiError> for SymVirtError {
    fn from(e: MpiError) -> Self {
        SymVirtError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninja_vmm::VmId;

    #[test]
    fn conversions_wrap_sources() {
        let e: SymVirtError = VmmError::NotRunning.into();
        assert!(matches!(e, SymVirtError::Vmm(_)));
        assert!(e.to_string().contains("VMM error"));
        let e: SymVirtError = MpiError::NotActive.into();
        assert!(matches!(e, SymVirtError::Runtime(_)));
        assert!(e.to_string().contains("MPI runtime error"));
    }

    #[test]
    fn messages_are_specific() {
        assert!(SymVirtError::VmNotWaiting(VmId(4))
            .to_string()
            .contains("VmId(4)"));
        assert!(SymVirtError::EmptyHostlist.to_string().contains("empty"));
        assert!(SymVirtError::AgentDisconnected(VmId(1))
            .to_string()
            .contains("monitor connection"));
        let multi = SymVirtError::AgentsDisconnected(vec![VmId(1), VmId(3)]);
        let s = multi.to_string();
        assert!(s.contains("VmId(1)") && s.contains("VmId(3)"), "{s}");
        assert!(s.starts_with("2 SymVirt agent(s)"), "{s}");
    }
}
