//! SymVirt coordinator — the guest-side half.
//!
//! In the paper, a SymVirt coordinator lives inside each MPI process
//! (injected as `libsymvirt.so` via `LD_PRELOAD`) and is invoked through
//! the OPAL CRS **SELF** component's callbacks. On a checkpoint request
//! it (1) participates in the CRCP coordination that brings the whole
//! job to a consistent state, (2) lets the pre-checkpoint phase release
//! all InfiniBand resources, and (3) issues the **SymVirt wait**
//! hypercall, pausing its VM until the VMM side signals.
//!
//! Our coordinator is job-scoped rather than process-scoped: the
//! simulation collapses the per-process SELF callbacks (which all do the
//! same thing in lockstep) into one [`Coordinator::checkpoint_and_wait`]
//! call that performs the same three steps for every VM of the job.

use crate::error::SymVirtError;
use ninja_cluster::DataCenter;
use ninja_mpi::{CommEnv, Crcp, MpiRuntime, QuiesceReport};
use ninja_sim::{SimDuration, SimTime};
use ninja_vmm::{VmId, VmPool};

/// Report of the guest-side checkpoint preparation.
#[derive(Debug, Clone)]
pub struct CoordReport {
    /// The CRCP quiesce outcome.
    pub quiesce: QuiesceReport,
    /// Time spent in the SELF checkpoint callback releasing IB resources
    /// (QP teardown is microseconds per QP; lumped here).
    pub release_time: SimDuration,
    /// Instant every VM entered SymVirt wait.
    pub waiting_at: SimTime,
}

impl CoordReport {
    /// Total guest-side preparation cost ("coordination" in the paper's
    /// overhead breakdown — reported as negligible).
    pub fn total(&self) -> SimDuration {
        self.quiesce.total() + self.release_time
    }
}

/// The guest-side coordinator for one MPI job.
#[derive(Debug, Clone, Copy, Default)]
pub struct Coordinator;

/// Per-QP teardown cost in the release phase (ibv_destroy_qp and
/// deregistration are sub-millisecond; 64-rank jobs have ~2000 QPs).
const RELEASE_COST_PER_CONN: SimDuration = SimDuration::from_micros(30);

impl Coordinator {
    /// Execute the checkpoint-side callback chain at `now`:
    /// CRCP quiesce -> release IB resources -> SymVirt wait on every VM.
    /// Returns when all VMs are paused.
    pub fn checkpoint_and_wait(
        &self,
        rt: &mut MpiRuntime,
        env: &CommEnv,
        pool: &mut VmPool,
        dc: &mut DataCenter,
        now: SimTime,
    ) -> Result<CoordReport, SymVirtError> {
        if rt.state() != ninja_mpi::RuntimeState::Active {
            return Err(SymVirtError::Runtime(ninja_mpi::MpiError::NotActive));
        }
        let quiesce = Crcp.quiesce(rt, env, now);
        let conns: usize = rt.kind_census().values().sum();
        rt.release_network(dc, pool)
            .map_err(SymVirtError::Runtime)?;
        let release_time = RELEASE_COST_PER_CONN * conns as u64;
        let waiting_at = quiesce.consistent_at + release_time;
        for vm in rt.layout().vms().to_vec() {
            pool.pause(vm).map_err(SymVirtError::Vmm)?;
        }
        Ok(CoordReport {
            quiesce,
            release_time,
            waiting_at,
        })
    }

    /// Execute the continue/restart-side callback at `now` (after the
    /// VMM signalled): rebuild or keep BTL modules per the runtime's
    /// `continue_like_restart` configuration.
    pub fn continue_callback(
        &self,
        rt: &mut MpiRuntime,
        pool: &VmPool,
        dc: &mut DataCenter,
        now: SimTime,
    ) -> Result<ninja_mpi::ContinueOutcome, SymVirtError> {
        rt.continue_after(pool, dc, now)
            .map_err(SymVirtError::Runtime)
    }

    /// The VMs participating (the coordinator's view of the job).
    pub fn vms_of(rt: &MpiRuntime) -> Vec<VmId> {
        rt.layout().vms().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninja_cluster::StorageId;
    use ninja_mpi::{JobLayout, MpiConfig, Rank};
    use ninja_sim::{Bytes, SimRng};
    use ninja_vmm::{VmSpec, VmState};

    fn world() -> (DataCenter, VmPool, MpiRuntime, CommEnv, SimTime) {
        let (mut dc, ib, _) = DataCenter::agc();
        let mut pool = VmPool::new();
        let mut rng = SimRng::new(77);
        let mut vms = Vec::new();
        let mut ready = SimTime::ZERO;
        for i in 0..4 {
            let vm = pool
                .create(
                    format!("vm{i}"),
                    VmSpec::paper_vm(),
                    dc.cluster(ib).nodes[i],
                    StorageId(0),
                    &mut dc,
                )
                .unwrap();
            let (_, at) = pool
                .attach_ib_hca(vm, &mut dc, SimTime::ZERO, &mut rng)
                .unwrap();
            ready = ready.max(at);
            vms.push(vm);
        }
        let mut rt = MpiRuntime::new(JobLayout::new(vms, 1), MpiConfig::default());
        rt.init(&pool, &mut dc, ready).unwrap();
        let env = CommEnv::from_world(&pool, &dc);
        (dc, pool, rt, env, ready)
    }

    #[test]
    fn checkpoint_pauses_all_vms_and_releases_ib() {
        let (mut dc, mut pool, mut rt, env, t0) = world();
        rt.record_send(
            Rank(0),
            Rank(1),
            Bytes::from_mib(1),
            t0 + SimDuration::from_millis(5),
        );
        let report = Coordinator
            .checkpoint_and_wait(&mut rt, &env, &mut pool, &mut dc, t0)
            .unwrap();
        assert_eq!(report.quiesce.drained_messages, 1);
        for vm in pool.iter() {
            assert_eq!(vm.state, VmState::SymWait);
            for &d in &vm.passthrough {
                assert!(
                    !dc.devices.as_ib(d).unwrap().has_resources(),
                    "safe to detach"
                );
            }
        }
        assert!(report.waiting_at > t0);
        // Coordination is negligible (well under a second).
        assert!(report.total().as_secs_f64() < 0.1, "{}", report.total());
    }

    #[test]
    fn continue_callback_rebuilds() {
        let (mut dc, mut pool, mut rt, env, t0) = world();
        Coordinator
            .checkpoint_and_wait(&mut rt, &env, &mut pool, &mut dc, t0)
            .unwrap();
        for vm in Coordinator::vms_of(&rt) {
            pool.resume(vm).unwrap();
        }
        let out = Coordinator
            .continue_callback(&mut rt, &pool, &mut dc, t0 + SimDuration::from_secs(1))
            .unwrap();
        assert!(matches!(out, ninja_mpi::ContinueOutcome::Reconstructed(_)));
    }

    #[test]
    fn double_checkpoint_fails() {
        let (mut dc, mut pool, mut rt, env, t0) = world();
        Coordinator
            .checkpoint_and_wait(&mut rt, &env, &mut pool, &mut dc, t0)
            .unwrap();
        let err = Coordinator
            .checkpoint_and_wait(&mut rt, &env, &mut pool, &mut dc, t0)
            .unwrap_err();
        assert!(matches!(err, SymVirtError::Runtime(_)));
    }

    use ninja_sim::SimDuration;
}
