//! SymVirt controller and agents — the VMM-side half.
//!
//! The paper's controller is "a master program on the VMM side" that
//! "spawns SymVirt agent threads. Each agent connects with the VMM
//! monitor interface, and executes a procedure corresponding to the
//! event" (Section III-B). Its Python script API (Fig. 5) is reproduced
//! here method-for-method: `wait_all`, `device_detach`, `migration`,
//! `device_attach`, `signal`, `close`.
//!
//! Agents operate on all VMs **in parallel** (one agent per QEMU), so a
//! phase's wall-clock cost is the *maximum* over the per-VM operations,
//! not the sum — that is why the paper's overhead is flat in the number
//! of VMs (Fig. 8: "the total overhead is identical as the number of
//! process per VM increases").

use crate::error::SymVirtError;
use ninja_cluster::{DataCenter, NodeId};
use ninja_sim::{SimDuration, SimRng, SimTime, Span, SpanBuilder};
use ninja_vmm::{MonitorCommand, MonitorReply, PrecopyPlan, QemuMonitor, VmId, VmPool, VmState};

/// One agent's record of a completed action (for the controller's log).
#[derive(Debug, Clone)]
pub struct AgentAction {
    /// The vm.
    pub vm: VmId,
    /// The action.
    pub action: String,
    /// The started.
    pub started: SimTime,
    /// The duration.
    pub duration: SimDuration,
}

/// Result of a parallel device phase.
#[derive(Debug, Clone)]
pub struct DevicePhase {
    /// Longest per-VM hotplug duration (the phase's wall-clock cost).
    pub duration: SimDuration,
    /// For attaches: the latest link-active instant across VMs.
    pub link_active_at: Option<SimTime>,
}

/// Result of a parallel migration phase.
#[derive(Debug, Clone)]
pub struct MigrationPhase {
    /// Per-VM plans, in hostlist order.
    pub plans: Vec<PrecopyPlan>,
    /// When the last VM's migration completed.
    pub completed_at: SimTime,
}

impl MigrationPhase {
    /// Wall-clock cost of the phase from its start.
    pub fn duration(&self, started: SimTime) -> SimDuration {
        self.completed_at.since(started)
    }

    /// Total bytes moved across all VMs.
    pub fn total_wire_bytes(&self) -> ninja_sim::Bytes {
        self.plans.iter().map(|p| p.wire_bytes()).sum()
    }
}

/// A migration opened under fair-share wire mode: checked and planned,
/// with the guest still on its source node. The caller owns the wire
/// time (e.g. a `FairShareLink` flow in `ninja-net`) and lands the VM
/// via [`Controller::migration_commit`] once the stream drains.
#[derive(Debug, Clone)]
pub struct PendingMigration {
    /// The VM in flight.
    pub vm: VmId,
    /// Destination node.
    pub dst: NodeId,
    /// The precopy schedule (wire bytes, scan floor).
    pub plan: PrecopyPlan,
    /// When the agent issued `migrate`.
    pub started: SimTime,
}

/// The VMM-side master program.
#[derive(Debug)]
pub struct Controller {
    hostlist: Vec<VmId>,
    monitor: QemuMonitor,
    log: Vec<AgentAction>,
    spans: Vec<Span>,
    hotplug_leaked: u64,
    closed: bool,
    /// Agents whose QEMU monitor connection has dropped (failure
    /// injection / crash simulation).
    failed_agents: std::collections::BTreeSet<VmId>,
}

impl Controller {
    /// Create a controller over the given VMs (the script's
    /// `symvirt.Controller(config.hostlist)`).
    pub fn new(hostlist: Vec<VmId>, monitor: QemuMonitor) -> Self {
        Controller {
            hostlist,
            monitor,
            log: Vec::new(),
            spans: Vec::new(),
            hotplug_leaked: 0,
            closed: false,
            failed_agents: std::collections::BTreeSet::new(),
        }
    }

    /// Record a per-VM phase span (component `symvirt`, labeled with the
    /// VM's name) alongside the script-style action log.
    fn record_vm_span(
        &mut self,
        phase: &str,
        pool: &VmPool,
        vm: VmId,
        started: SimTime,
        end: SimTime,
    ) {
        self.spans.push(
            SpanBuilder::new("symvirt", phase, started)
                .label("vm", pool.get(vm).name.clone())
                .end(end),
        );
    }

    /// Drain the typed per-VM spans accumulated since the last call
    /// (the orchestrator records them into the world trace).
    pub fn take_spans(&mut self) -> Vec<Span> {
        std::mem::take(&mut self.spans)
    }

    /// Total IB resources the monitor reported as leaked during device
    /// detaches (nonzero only under forced unplug) — surfaced as the
    /// hotplug-retry count in the metrics registry.
    pub fn hotplug_leaked(&self) -> u64 {
        self.hotplug_leaked
    }

    /// Simulate the crash of the agent serving `vm`: its monitor
    /// connection drops and every subsequent phase fails with
    /// [`SymVirtError::AgentsDisconnected`], listing every failed VM.
    /// The guests stay safely paused in SymVirt wait — a fresh
    /// controller (or [`repair_agents`](Controller::repair_agents)) can
    /// take over.
    pub fn inject_agent_failure(&mut self, vm: VmId) {
        self.failed_agents.insert(vm);
    }

    /// Every agent currently disconnected, sorted by VM id.
    pub fn failed_agents(&self) -> Vec<VmId> {
        self.failed_agents.iter().copied().collect()
    }

    /// Respawn every crashed agent (the retry path reconnects them to
    /// their QEMU monitors); subsequent phases run normally.
    pub fn repair_agents(&mut self) {
        self.failed_agents.clear();
    }

    /// Returns the hostlist.
    pub fn hostlist(&self) -> &[VmId] {
        &self.hostlist
    }

    /// Returns the log.
    pub fn log(&self) -> &[AgentAction] {
        &self.log
    }

    /// Returns the monitor.
    pub fn monitor(&self) -> &QemuMonitor {
        &self.monitor
    }

    fn check_open(&self) -> Result<(), SymVirtError> {
        if self.closed {
            // A closed controller has torn down its agents.
            return Err(SymVirtError::AgentDisconnected(
                self.hostlist.first().copied().unwrap_or(VmId(0)),
            ));
        }
        if !self.failed_agents.is_empty() {
            // Report every disconnected agent, not just the first — an
            // operator (or the retry loop) needs the full blast radius.
            return Err(SymVirtError::AgentsDisconnected(self.failed_agents()));
        }
        Ok(())
    }

    /// `wait_all`: verify every VM has issued the SymVirt wait hypercall
    /// (is paused). The real controller blocks here; in the simulation
    /// the guest side has already run, so this is a consistency check.
    pub fn wait_all(&self, pool: &VmPool) -> Result<(), SymVirtError> {
        self.check_open()?;
        for &vm in &self.hostlist {
            if pool.get(vm).state != VmState::SymWait {
                return Err(SymVirtError::VmNotWaiting(vm));
            }
        }
        Ok(())
    }

    /// `device_detach(tag=...)`: every agent issues `device_del` for the
    /// tagged device on its VM. Runs in parallel; returns the phase cost.
    /// VMs without a matching device (e.g. already on Ethernet) are
    /// skipped, mirroring the script's per-host behaviour.
    pub fn device_detach(
        &mut self,
        tag_prefix: &str,
        pool: &mut VmPool,
        dc: &mut DataCenter,
        now: SimTime,
        rng: &mut SimRng,
        during_migration: bool,
    ) -> Result<DevicePhase, SymVirtError> {
        self.check_open()?;
        self.wait_all(pool)?;
        let mut max = SimDuration::ZERO;
        for &vm in &self.hostlist.clone() {
            // Find this VM's passthrough device whose tag starts with the
            // prefix (the paper tags HCAs 'vf0'; ours are 'hca-<node>').
            let tag = pool
                .get(vm)
                .passthrough
                .iter()
                .map(|&d| dc.devices.get(d).tag.clone())
                .find(|t| t.starts_with(tag_prefix));
            let Some(tag) = tag else { continue };
            let reply = self.monitor.execute(
                MonitorCommand::DeviceDel {
                    vm,
                    tag: tag.clone(),
                    force: false,
                },
                pool,
                dc,
                now,
                rng,
                during_migration,
            )?;
            if let MonitorReply::DeviceDeleted {
                duration, leaked, ..
            } = reply
            {
                max = max.max(duration);
                self.hotplug_leaked += leaked as u64;
                self.record_vm_span("detach", pool, vm, now, now + duration);
                self.log.push(AgentAction {
                    vm,
                    action: format!("device_del {tag}"),
                    started: now,
                    duration,
                });
            }
        }
        Ok(DevicePhase {
            duration: max,
            link_active_at: None,
        })
    }

    /// `device_attach(...)`: every agent issues `device_add` of a free
    /// host IB HCA on its VM's node. VMs on nodes without HCAs (Ethernet
    /// cluster) are skipped.
    pub fn device_attach(
        &mut self,
        pool: &mut VmPool,
        dc: &mut DataCenter,
        now: SimTime,
        rng: &mut SimRng,
        during_migration: bool,
    ) -> Result<DevicePhase, SymVirtError> {
        self.check_open()?;
        self.wait_all(pool)?;
        let mut max = SimDuration::ZERO;
        let mut link_max: Option<SimTime> = None;
        for &vm in &self.hostlist.clone() {
            if dc.free_ib_hca_on(pool.get(vm).node).is_none() {
                continue;
            }
            let reply = self.monitor.execute(
                MonitorCommand::DeviceAddIb { vm },
                pool,
                dc,
                now,
                rng,
                during_migration,
            )?;
            if let MonitorReply::DeviceAdded {
                duration,
                link_active_at,
                ..
            } = reply
            {
                max = max.max(duration);
                link_max = Some(link_max.map_or(link_active_at, |m| m.max(link_active_at)));
                self.record_vm_span("attach", pool, vm, now, now + duration);
                self.log.push(AgentAction {
                    vm,
                    action: "device_add ib-hca".into(),
                    started: now,
                    duration,
                });
            }
        }
        Ok(DevicePhase {
            duration: max,
            link_active_at: link_max,
        })
    }

    /// `migration(src_hostlist, dst_hostlist)`: migrate VM *i* to
    /// `dsts[i % dsts.len()]` (wrapping supports the paper's
    /// consolidation of 4 VMs onto 2 hosts). All agents start at `now`;
    /// contention on shared destination NICs emerges from the link model.
    pub fn migration(
        &mut self,
        dsts: &[NodeId],
        pool: &mut VmPool,
        dc: &mut DataCenter,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Result<MigrationPhase, SymVirtError> {
        self.check_open()?;
        if dsts.is_empty() {
            return Err(SymVirtError::EmptyHostlist);
        }
        self.wait_all(pool)?;
        let mut plans = Vec::with_capacity(self.hostlist.len());
        let mut completed_at = now;
        for (i, &vm) in self.hostlist.clone().iter().enumerate() {
            let dst = dsts[i % dsts.len()];
            let reply = self.monitor.execute(
                MonitorCommand::Migrate { vm, dst },
                pool,
                dc,
                now,
                rng,
                true,
            )?;
            if let MonitorReply::MigrationDone { plan, completes_at } = reply {
                completed_at = completed_at.max(completes_at);
                self.record_vm_span("migration", pool, vm, now, completes_at);
                self.log.push(AgentAction {
                    vm,
                    action: format!("migrate -> {}", dc.node(dst).hostname),
                    started: now,
                    duration: completes_at.since(now),
                });
                plans.push(plan);
            }
        }
        Ok(MigrationPhase {
            plans,
            completed_at,
        })
    }

    /// First half of [`migration`](Controller::migration) for fair-share
    /// wire mode: every agent checks and plans its VM's precopy, but the
    /// wire time is left to the caller's contention model — open one
    /// flow per returned [`PendingMigration`], then land each VM with
    /// [`migration_commit`](Controller::migration_commit) when its
    /// stream drains. Guests stay on their source nodes meanwhile.
    pub fn migration_open(
        &mut self,
        dsts: &[NodeId],
        pool: &VmPool,
        dc: &DataCenter,
        now: SimTime,
    ) -> Result<Vec<PendingMigration>, SymVirtError> {
        self.check_open()?;
        if dsts.is_empty() {
            return Err(SymVirtError::EmptyHostlist);
        }
        self.wait_all(pool)?;
        let cfg = self.monitor.config();
        let mut pending = Vec::with_capacity(self.hostlist.len());
        for (i, &vm) in self.hostlist.iter().enumerate() {
            let dst = dsts[i % dsts.len()];
            pool.check_migratable(vm, dst, dc)
                .map_err(SymVirtError::from)?;
            let guest_running = pool.get(vm).state == VmState::Running;
            let src = pool.get(vm).node;
            // Plan against the raw NIC rate, exactly as the monitor's
            // Migrate path does; the fair-share link applies contention.
            let link_rate = dc.node(src).spec.eth_bandwidth;
            let plan = ninja_vmm::plan_precopy(&pool.get(vm).memory, guest_running, link_rate, cfg);
            pending.push(PendingMigration {
                vm,
                dst,
                plan,
                started: now,
            });
        }
        Ok(pending)
    }

    /// Second half of fair-share-mode migration: land `p.vm` on `p.dst`
    /// at `completes_at` (when its wire stream drained, floored by the
    /// precopy schedule) and record the agent's span/log entry, exactly
    /// as the serial [`migration`](Controller::migration) phase does.
    pub fn migration_commit(
        &mut self,
        p: &PendingMigration,
        completes_at: SimTime,
        pool: &mut VmPool,
        dc: &mut DataCenter,
    ) {
        pool.complete_migration(p.vm, p.dst, dc);
        pool.get_mut(p.vm).last_migration =
            Some((p.plan.wire_bytes().get(), completes_at.since(p.started)));
        self.record_vm_span("migration", pool, p.vm, p.started, completes_at);
        self.log.push(AgentAction {
            vm: p.vm,
            action: format!("migrate -> {}", dc.node(p.dst).hostname),
            started: p.started,
            duration: completes_at.since(p.started),
        });
    }

    /// `signal`: resume every VM (SymVirt signal hypercall).
    pub fn signal(&mut self, pool: &mut VmPool) -> Result<(), SymVirtError> {
        self.check_open()?;
        for &vm in &self.hostlist {
            pool.resume(vm)?;
        }
        Ok(())
    }

    /// `quit` / `close`: tear down the agents. Further calls fail.
    pub fn close(&mut self) {
        self.closed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninja_cluster::{DataCenter, StorageId};
    use ninja_vmm::VmSpec;

    fn world() -> (DataCenter, VmPool, Vec<VmId>, SimRng) {
        let (mut dc, ib, _) = DataCenter::agc();
        let mut pool = VmPool::new();
        let mut rng = SimRng::new(101);
        let mut vms = Vec::new();
        for i in 0..4 {
            let vm = pool
                .create(
                    format!("vm{i}"),
                    VmSpec::paper_vm(),
                    dc.cluster(ib).nodes[i],
                    StorageId(0),
                    &mut dc,
                )
                .unwrap();
            pool.attach_ib_hca(vm, &mut dc, SimTime::ZERO, &mut rng)
                .unwrap();
            vms.push(vm);
        }
        (dc, pool, vms, rng)
    }

    fn pause_all(pool: &mut VmPool, vms: &[VmId]) {
        for &vm in vms {
            pool.pause(vm).unwrap();
        }
    }

    #[test]
    fn wait_all_requires_paused_vms() {
        let (_dc, pool, vms, _) = world();
        let ctl = Controller::new(vms.clone(), QemuMonitor::default());
        let err = ctl.wait_all(&pool).unwrap_err();
        assert!(matches!(err, SymVirtError::VmNotWaiting(_)));
    }

    #[test]
    fn detach_phase_is_max_not_sum() {
        let (mut dc, mut pool, vms, mut rng) = world();
        pause_all(&mut pool, &vms);
        let mut ctl = Controller::new(vms.clone(), QemuMonitor::default());
        let phase = ctl
            .device_detach("hca-", &mut pool, &mut dc, SimTime::ZERO, &mut rng, false)
            .unwrap();
        // One IB detach is ~2.8 s; four in parallel must not be ~11 s.
        let d = phase.duration.as_secs_f64();
        assert!((2.7..3.3).contains(&d), "parallel detach {d}");
        assert_eq!(ctl.log().len(), 4);
        for vm in pool.iter() {
            assert!(vm.passthrough.is_empty());
        }
    }

    #[test]
    fn full_script_fallback_sequence() {
        // Mirrors Fig. 5 part 1: wait_all -> device_detach -> signal,
        // then wait_all -> migration.
        let (mut dc, mut pool, vms, mut rng) = world();
        let eth_nodes: Vec<NodeId> = dc.cluster(ninja_cluster::ClusterId(1)).nodes[..4].to_vec();
        pause_all(&mut pool, &vms);
        let mut ctl = Controller::new(vms.clone(), QemuMonitor::default());
        ctl.wait_all(&pool).unwrap();
        ctl.device_detach("hca-", &mut pool, &mut dc, SimTime::ZERO, &mut rng, true)
            .unwrap();
        let phase = ctl
            .migration(&eth_nodes, &mut pool, &mut dc, SimTime::ZERO, &mut rng)
            .unwrap();
        assert_eq!(phase.plans.len(), 4);
        for (i, vm) in pool.iter().enumerate() {
            assert_eq!(vm.node, eth_nodes[i]);
        }
        ctl.signal(&mut pool).unwrap();
        for vm in pool.iter() {
            assert_eq!(vm.state, VmState::Running);
        }
    }

    #[test]
    fn consolidation_wraps_hostlist() {
        let (mut dc, mut pool, vms, mut rng) = world();
        let eth_nodes: Vec<NodeId> = dc.cluster(ninja_cluster::ClusterId(1)).nodes[..2].to_vec();
        pause_all(&mut pool, &vms);
        let mut ctl = Controller::new(vms.clone(), QemuMonitor::default());
        ctl.device_detach("hca-", &mut pool, &mut dc, SimTime::ZERO, &mut rng, true)
            .unwrap();
        ctl.migration(&eth_nodes, &mut pool, &mut dc, SimTime::ZERO, &mut rng)
            .unwrap();
        // 4 VMs on 2 hosts: 2 each, CPU over-committed.
        assert_eq!(dc.node(eth_nodes[0]).committed_vcpus(), 16);
        assert_eq!(dc.node(eth_nodes[0]).cpu_contention(), 2.0);
    }

    #[test]
    fn attach_reports_linkup_horizon() {
        let (mut dc, mut pool, vms, mut rng) = world();
        pause_all(&mut pool, &vms);
        let mut ctl = Controller::new(vms.clone(), QemuMonitor::default());
        ctl.device_detach("hca-", &mut pool, &mut dc, SimTime::ZERO, &mut rng, false)
            .unwrap();
        let phase = ctl
            .device_attach(&mut pool, &mut dc, SimTime::ZERO, &mut rng, false)
            .unwrap();
        let link = phase.link_active_at.expect("IB attach trains links");
        // attach (~1.1 s) + linkup (~29.8 s)
        let t = link.as_secs_f64();
        assert!((30.0..32.5).contains(&t), "link horizon {t}");
    }

    #[test]
    fn attach_skips_hca_less_nodes() {
        let (mut dc, _, _, mut rng) = world();
        // VMs on the Ethernet cluster have no HCAs to attach.
        let mut pool2 = VmPool::new();
        let eth_node = dc.cluster(ninja_cluster::ClusterId(1)).nodes[4];
        let vm = pool2
            .create(
                "eth-vm",
                VmSpec::paper_vm(),
                eth_node,
                StorageId(0),
                &mut dc,
            )
            .unwrap();
        pool2.pause(vm).unwrap();
        let mut ctl = Controller::new(vec![vm], QemuMonitor::default());
        let phase = ctl
            .device_attach(&mut pool2, &mut dc, SimTime::ZERO, &mut rng, false)
            .unwrap();
        assert_eq!(phase.duration, SimDuration::ZERO);
        assert_eq!(phase.link_active_at, None);
    }

    #[test]
    fn injected_agent_failure_blocks_phases() {
        let (mut dc, mut pool, vms, mut rng) = world();
        pause_all(&mut pool, &vms);
        let mut ctl = Controller::new(vms.clone(), QemuMonitor::default());
        ctl.inject_agent_failure(vms[2]);
        let err = ctl
            .device_detach("hca-", &mut pool, &mut dc, SimTime::ZERO, &mut rng, false)
            .unwrap_err();
        assert!(matches!(&err, SymVirtError::AgentsDisconnected(v) if v == &vec![vms[2]]));
        // Nothing happened: every HCA is still attached.
        for &vm in &vms {
            assert_eq!(pool.get(vm).passthrough.len(), 1);
        }
    }

    #[test]
    fn failure_report_lists_every_disconnected_agent() {
        let (mut dc, mut pool, vms, mut rng) = world();
        pause_all(&mut pool, &vms);
        let mut ctl = Controller::new(vms.clone(), QemuMonitor::default());
        // Two agents drop; the error must surface both, not just the
        // first in iteration order.
        ctl.inject_agent_failure(vms[3]);
        ctl.inject_agent_failure(vms[1]);
        assert_eq!(ctl.failed_agents(), vec![vms[1], vms[3]], "sorted");
        let err = ctl
            .device_detach("hca-", &mut pool, &mut dc, SimTime::ZERO, &mut rng, false)
            .unwrap_err();
        match &err {
            SymVirtError::AgentsDisconnected(failed) => {
                assert_eq!(failed, &vec![vms[1], vms[3]]);
            }
            other => panic!("expected AgentsDisconnected, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("VmId(1)") && msg.contains("VmId(3)"), "{msg}");
        // Respawning the agents clears the fault.
        ctl.repair_agents();
        assert!(ctl.failed_agents().is_empty());
        ctl.device_detach("hca-", &mut pool, &mut dc, SimTime::ZERO, &mut rng, false)
            .unwrap();
    }

    #[test]
    fn phases_produce_per_vm_spans() {
        let (mut dc, mut pool, vms, mut rng) = world();
        let eth_nodes: Vec<NodeId> = dc.cluster(ninja_cluster::ClusterId(1)).nodes[..4].to_vec();
        pause_all(&mut pool, &vms);
        let mut ctl = Controller::new(vms.clone(), QemuMonitor::default());
        ctl.device_detach("hca-", &mut pool, &mut dc, SimTime::ZERO, &mut rng, true)
            .unwrap();
        ctl.migration(&eth_nodes, &mut pool, &mut dc, SimTime::ZERO, &mut rng)
            .unwrap();
        let spans = ctl.take_spans();
        assert_eq!(spans.len(), 8, "4 detach + 4 migration");
        for s in &spans {
            assert_eq!(s.component, "symvirt");
            assert!(s.end >= s.start, "well-formed span");
            let vm = s.label("vm").expect("vm label");
            assert!(vm.starts_with("vm"), "vm name label, got {vm}");
        }
        assert_eq!(spans.iter().filter(|s| s.name == "detach").count(), 4);
        assert_eq!(spans.iter().filter(|s| s.name == "migration").count(), 4);
        assert!(ctl.take_spans().is_empty(), "take drains");
        assert_eq!(ctl.hotplug_leaked(), 0, "graceful detach leaks nothing");
    }

    #[test]
    fn open_commit_matches_serial_migration() {
        // The fair-mode two-phase path must plan the same precopy and
        // leave the pool in the same state as the serial phase.
        let plans_serial = {
            let (mut dc, mut pool, vms, mut rng) = world();
            let eth: Vec<NodeId> = dc.cluster(ninja_cluster::ClusterId(1)).nodes[..4].to_vec();
            pause_all(&mut pool, &vms);
            let mut ctl = Controller::new(vms.clone(), QemuMonitor::default());
            ctl.device_detach("hca-", &mut pool, &mut dc, SimTime::ZERO, &mut rng, true)
                .unwrap();
            ctl.migration(&eth, &mut pool, &mut dc, SimTime::ZERO, &mut rng)
                .unwrap()
                .plans
        };
        let (mut dc, mut pool, vms, mut rng) = world();
        let eth: Vec<NodeId> = dc.cluster(ninja_cluster::ClusterId(1)).nodes[..4].to_vec();
        pause_all(&mut pool, &vms);
        let mut ctl = Controller::new(vms.clone(), QemuMonitor::default());
        ctl.device_detach("hca-", &mut pool, &mut dc, SimTime::ZERO, &mut rng, true)
            .unwrap();
        let pending = ctl.migration_open(&eth, &pool, &dc, SimTime::ZERO).unwrap();
        assert_eq!(pending.len(), 4);
        for (p, serial) in pending.iter().zip(&plans_serial) {
            assert_eq!(p.plan.wire_bytes(), serial.wire_bytes());
            // Guest still on the source node until committed.
            assert_ne!(pool.get(p.vm).node, p.dst);
        }
        for p in &pending {
            let done = SimTime::ZERO + p.plan.duration();
            ctl.migration_commit(p, done, &mut pool, &mut dc);
        }
        for (i, vm) in pool.iter().enumerate() {
            assert_eq!(vm.node, eth[i]);
            assert!(vm.last_migration.is_some());
        }
        let spans = ctl.take_spans();
        assert_eq!(
            spans.iter().filter(|s| s.name == "migration").count(),
            4,
            "commit records per-VM migration spans"
        );
    }

    #[test]
    fn closed_controller_rejects() {
        let (_dc, pool, vms, _) = world();
        let mut ctl = Controller::new(vms, QemuMonitor::default());
        ctl.close();
        assert!(ctl.wait_all(&pool).is_err());
    }
}
