//! Deterministic fault injection for the migration control plane.
//!
//! MigrOS and DMTCP's InfiniBand work both treat *failure-time*
//! transport teardown as the hard part of transparent migration; this
//! module lets the simulator exercise every Fig. 4 phase under failure
//! without giving up determinism. A [`FaultPlan`] is a seeded list of
//! [`FaultSpec`]s — each names a fault kind, a phase, and optionally a
//! job/migration to target — and the stepper consults it (via
//! [`FaultPlan::fire`]) before executing each phase. Firing draws no
//! randomness and, when the plan is empty, leaves neither the RNG nor
//! the clock disturbed, so a fault-free run is bit-identical to a run
//! without the subsystem.
//!
//! Recovery is governed by a [`RetryPolicy`]: bounded retries with
//! exponential backoff in *virtual* time. When retries are exhausted
//! the stepper either degrades gracefully (a failed IB re-attach lands
//! the job on TCP — the BTL exclusivity logic does the rest) or fails
//! the job cleanly with a typed error.

use ninja_sim::{SimDuration, SimRng};
use std::fmt;

/// What goes wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The QEMU monitor stops answering: the phase's QMP command times
    /// out. Retryable; terminal failure is `VmmError::MonitorTimeout`.
    QmpTimeout,
    /// The precopy makes no progress for a while (dirty-page storm,
    /// throttled wire). Adds virtual time; never terminal by itself.
    PrecopyStall,
    /// QEMU aborts the live migration mid-stream. Retryable; terminal
    /// failure is `VmmError::MigrationAborted`.
    PrecopyAbort,
    /// `device_add` of the destination HCA fails. At the attach phase
    /// this degrades the job to TCP instead of failing it.
    HotplugAttach,
    /// A SymVirt agent loses its monitor connection. Retryable (the
    /// controller respawns the agent); terminal failure lists every
    /// disconnected VM.
    AgentDisconnect,
}

impl FaultKind {
    /// The `--fault` flag spelling (also the metric label).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::QmpTimeout => "qmp-timeout",
            FaultKind::PrecopyStall => "precopy-stall",
            FaultKind::PrecopyAbort => "precopy-abort",
            FaultKind::HotplugAttach => "hotplug-attach",
            FaultKind::AgentDisconnect => "agent-disconnect",
        }
    }

    /// Parse a flag spelling.
    pub fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "qmp-timeout" => Some(FaultKind::QmpTimeout),
            "precopy-stall" => Some(FaultKind::PrecopyStall),
            "precopy-abort" => Some(FaultKind::PrecopyAbort),
            "hotplug-attach" => Some(FaultKind::HotplugAttach),
            "agent-disconnect" => Some(FaultKind::AgentDisconnect),
            _ => None,
        }
    }

    /// The phase this kind targets when the spec names none.
    fn default_phase(self) -> FaultPhase {
        match self {
            FaultKind::QmpTimeout | FaultKind::AgentDisconnect => FaultPhase::Detach,
            FaultKind::PrecopyStall | FaultKind::PrecopyAbort => FaultPhase::Migration,
            FaultKind::HotplugAttach => FaultPhase::Attach,
        }
    }

    /// Whether this kind can fire at `phase` at all.
    fn valid_at(self, phase: FaultPhase) -> bool {
        match self {
            FaultKind::QmpTimeout | FaultKind::AgentDisconnect => true,
            FaultKind::PrecopyStall | FaultKind::PrecopyAbort => phase == FaultPhase::Migration,
            FaultKind::HotplugAttach => phase == FaultPhase::Attach,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which Fig. 4 phase a fault targets. (The linkup wait is passive —
/// there is no command to fail there.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPhase {
    /// CRCP quiesce + SymVirt wait.
    Coordination,
    /// The parallel `device_del` phase.
    Detach,
    /// The live precopy migration.
    Migration,
    /// The parallel `device_add` phase.
    Attach,
}

impl FaultPhase {
    /// The flag/metric spelling.
    pub fn name(self) -> &'static str {
        match self {
            FaultPhase::Coordination => "coordination",
            FaultPhase::Detach => "detach",
            FaultPhase::Migration => "migration",
            FaultPhase::Attach => "attach",
        }
    }

    /// Parse a flag spelling.
    pub fn parse(s: &str) -> Option<FaultPhase> {
        match s {
            "coordination" => Some(FaultPhase::Coordination),
            "detach" => Some(FaultPhase::Detach),
            "migration" => Some(FaultPhase::Migration),
            "attach" => Some(FaultPhase::Attach),
            _ => None,
        }
    }

    const ALL: [FaultPhase; 4] = [
        FaultPhase::Coordination,
        FaultPhase::Detach,
        FaultPhase::Migration,
        FaultPhase::Attach,
    ];
}

impl fmt::Display for FaultPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One injected fault: kind + where it strikes.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// What goes wrong.
    pub kind: FaultKind,
    /// At which Fig. 4 phase.
    pub phase: FaultPhase,
    /// Which fleet job (`None` = every job).
    pub job: Option<usize>,
    /// Which of the job's migrations (0 = the first; a recovery
    /// migration scheduled by the fleet engine is index 1).
    pub mig: usize,
    /// How many times the fault fires before clearing. `None` =
    /// persistent: it keeps firing until retries are exhausted, which
    /// forces degradation or clean failure.
    pub times: Option<u32>,
    /// Extra virtual time a [`FaultKind::PrecopyStall`] adds per fire.
    pub stall: SimDuration,
}

impl FaultSpec {
    /// A persistent fault of `kind` at its default phase, striking
    /// every job's first migration.
    pub fn new(kind: FaultKind) -> FaultSpec {
        FaultSpec {
            kind,
            phase: kind.default_phase(),
            job: None,
            mig: 0,
            times: match kind {
                // A persistent stall would add time forever; default to
                // a single stall unless the spec says otherwise.
                FaultKind::PrecopyStall => Some(1),
                _ => None,
            },
            stall: SimDuration::from_secs(30),
        }
    }

    /// Parse a `--fault` flag value:
    /// `KIND[:phase=P][:job=J][:mig=M][:times=N][:stall=SECS]` where
    /// KIND is one of `qmp-timeout`, `precopy-stall`, `precopy-abort`,
    /// `hotplug-attach`, `agent-disconnect` and P is a Fig. 4 phase
    /// (`coordination`, `detach`, `migration`, `attach`).
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut parts = s.split(':');
        let kind_s = parts.next().unwrap_or_default();
        let kind = FaultKind::parse(kind_s)
            .ok_or_else(|| format!("unknown fault kind '{kind_s}' (see --help)"))?;
        let mut spec = FaultSpec::new(kind);
        for part in parts {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault option '{part}' is not key=value"))?;
            match key {
                "phase" => {
                    spec.phase = FaultPhase::parse(value)
                        .ok_or_else(|| format!("unknown fault phase '{value}'"))?;
                }
                "job" => {
                    spec.job = Some(
                        value
                            .parse()
                            .map_err(|_| format!("fault job '{value}' is not an index"))?,
                    );
                }
                "mig" => {
                    spec.mig = value
                        .parse()
                        .map_err(|_| format!("fault mig '{value}' is not an index"))?;
                }
                "times" => {
                    let n: u32 = value
                        .parse()
                        .map_err(|_| format!("fault times '{value}' is not a count"))?;
                    if n == 0 {
                        return Err("fault times must be at least 1".into());
                    }
                    spec.times = Some(n);
                }
                "stall" => {
                    let secs: f64 = value
                        .parse()
                        .map_err(|_| format!("fault stall '{value}' is not seconds"))?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err("fault stall must be positive seconds".into());
                    }
                    spec.stall = SimDuration::from_secs_f64(secs);
                }
                _ => return Err(format!("unknown fault option '{key}'")),
            }
        }
        if !spec.kind.valid_at(spec.phase) {
            return Err(format!(
                "fault kind {} cannot fire at phase {}",
                spec.kind, spec.phase
            ));
        }
        Ok(spec)
    }
}

/// What [`FaultPlan::fire`] hands the stepper.
#[derive(Debug, Clone, Copy)]
pub struct Injected {
    /// The fault that fired.
    pub kind: FaultKind,
    /// The stall duration (meaningful for [`FaultKind::PrecopyStall`]).
    pub stall: SimDuration,
}

/// A seeded, deterministic set of faults to inject into a run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
    /// Fires consumed per spec (for `times`-bounded specs).
    fired: Vec<u32>,
}

impl FaultPlan {
    /// An empty plan: nothing ever fires.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan from explicit specs.
    pub fn from_specs(specs: Vec<FaultSpec>) -> FaultPlan {
        let fired = vec![0; specs.len()];
        FaultPlan { specs, fired }
    }

    /// Add a spec.
    pub fn push(&mut self, spec: FaultSpec) {
        self.specs.push(spec);
        self.fired.push(0);
    }

    /// Whether any fault could ever fire.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The specs, for reporting.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// A seeded random plan over `jobs` fleet jobs: 1–3 faults, each
    /// aimed at a random job's first migration at a random (valid)
    /// phase, with a mix of one-shot and persistent budgets. The draw
    /// uses its own generator — building a plan never perturbs a
    /// world's RNG stream.
    pub fn random(seed: u64, jobs: usize) -> FaultPlan {
        assert!(jobs > 0, "a fault plan needs at least one job to target");
        let mut rng = SimRng::new(seed ^ 0xfa17_0000);
        let kinds = [
            FaultKind::QmpTimeout,
            FaultKind::PrecopyStall,
            FaultKind::PrecopyAbort,
            FaultKind::HotplugAttach,
            FaultKind::AgentDisconnect,
        ];
        let count = 1 + rng.below(3) as usize;
        let mut plan = FaultPlan::new();
        for _ in 0..count {
            let kind = kinds[rng.below(kinds.len() as u64) as usize];
            let valid: Vec<FaultPhase> = FaultPhase::ALL
                .into_iter()
                .filter(|&p| kind.valid_at(p))
                .collect();
            let phase = valid[rng.below(valid.len() as u64) as usize];
            let mut spec = FaultSpec::new(kind);
            spec.phase = phase;
            spec.job = Some(rng.below(jobs as u64) as usize);
            // Half the specs retry to success, half exhaust retries.
            if rng.below(2) == 0 {
                spec.times = Some(1 + rng.below(2) as u32);
            } else if kind != FaultKind::PrecopyStall {
                spec.times = None;
            }
            plan.push(spec);
        }
        plan
    }

    /// Consult the plan before executing `phase` of migration `mig` of
    /// job `job`. Returns the first matching armed fault (consuming one
    /// fire from its budget), or `None`. Pure bookkeeping: no RNG, no
    /// clock.
    pub fn fire(&mut self, job: usize, mig: usize, phase: FaultPhase) -> Option<Injected> {
        for (i, spec) in self.specs.iter().enumerate() {
            if spec.phase != phase || spec.mig != mig {
                continue;
            }
            if spec.job.is_some_and(|j| j != job) {
                continue;
            }
            if let Some(times) = spec.times {
                if self.fired[i] >= times {
                    continue;
                }
            }
            self.fired[i] += 1;
            return Some(Injected {
                kind: spec.kind,
                stall: spec.stall,
            });
        }
        None
    }
}

/// Bounded retry with exponential backoff, in virtual time.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first failure before giving up.
    pub max_retries: u32,
    /// Backoff before retry 1; doubles per retry (capped at 64×).
    pub backoff: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff: SimDuration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// The wait before retry `attempt` (1-based): `backoff · 2^(a-1)`.
    pub fn backoff_before(&self, attempt: u32) -> SimDuration {
        let shift = attempt.saturating_sub(1).min(6);
        self.backoff.mul_f64((1u64 << shift) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_grammar() {
        let s = FaultSpec::parse("hotplug-attach:phase=attach:job=0:times=2:stall=4.5").unwrap();
        assert_eq!(s.kind, FaultKind::HotplugAttach);
        assert_eq!(s.phase, FaultPhase::Attach);
        assert_eq!(s.job, Some(0));
        assert_eq!(s.times, Some(2));
        assert_eq!(s.mig, 0);
        let s = FaultSpec::parse("qmp-timeout:phase=coordination:mig=1").unwrap();
        assert_eq!(s.phase, FaultPhase::Coordination);
        assert_eq!(s.mig, 1);
        assert_eq!(s.times, None, "defaults to persistent");
    }

    #[test]
    fn parse_rejects_nonsense() {
        assert!(FaultSpec::parse("disk-full").is_err());
        assert!(FaultSpec::parse("qmp-timeout:phase=linkup").is_err());
        assert!(
            FaultSpec::parse("precopy-abort:phase=attach").is_err(),
            "abort only at migration"
        );
        assert!(FaultSpec::parse("hotplug-attach:phase=detach").is_err());
        assert!(FaultSpec::parse("qmp-timeout:times=0").is_err());
        assert!(FaultSpec::parse("qmp-timeout:stall=-3").is_err());
        assert!(FaultSpec::parse("qmp-timeout:bogus=1").is_err());
    }

    #[test]
    fn stall_defaults_to_one_shot() {
        let s = FaultSpec::parse("precopy-stall").unwrap();
        assert_eq!(s.times, Some(1), "a persistent stall would never end");
        assert_eq!(s.phase, FaultPhase::Migration);
    }

    #[test]
    fn fire_respects_target_and_budget() {
        let mut plan = FaultPlan::from_specs(vec![FaultSpec::parse(
            "qmp-timeout:phase=detach:job=1:times=2",
        )
        .unwrap()]);
        assert!(plan.fire(0, 0, FaultPhase::Detach).is_none(), "wrong job");
        assert!(plan.fire(1, 1, FaultPhase::Detach).is_none(), "wrong mig");
        assert!(plan.fire(1, 0, FaultPhase::Attach).is_none(), "wrong phase");
        assert!(plan.fire(1, 0, FaultPhase::Detach).is_some());
        assert!(plan.fire(1, 0, FaultPhase::Detach).is_some());
        assert!(
            plan.fire(1, 0, FaultPhase::Detach).is_none(),
            "budget spent"
        );
    }

    #[test]
    fn persistent_fault_never_clears() {
        let mut plan = FaultPlan::from_specs(vec![FaultSpec::parse("precopy-abort").unwrap()]);
        for _ in 0..100 {
            assert!(plan.fire(3, 0, FaultPhase::Migration).is_some());
        }
        assert!(
            plan.fire(3, 1, FaultPhase::Migration).is_none(),
            "mig 1 untouched"
        );
    }

    #[test]
    fn random_plans_are_seeded_and_valid() {
        let a = FaultPlan::random(7, 4);
        let b = FaultPlan::random(7, 4);
        assert_eq!(a.specs().len(), b.specs().len());
        for (x, y) in a.specs().iter().zip(b.specs()) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.phase, y.phase);
            assert_eq!(x.job, y.job);
        }
        assert!(!FaultPlan::random(8, 4).is_empty());
        for seed in 0..50 {
            for s in FaultPlan::random(seed, 3).specs() {
                assert!(s.kind.valid_at(s.phase), "{s:?}");
                assert!(s.job.unwrap() < 3);
                assert!(s.kind != FaultKind::PrecopyStall || s.times.is_some());
            }
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            backoff: SimDuration::from_secs(2),
        };
        assert_eq!(p.backoff_before(1).as_secs_f64(), 2.0);
        assert_eq!(p.backoff_before(2).as_secs_f64(), 4.0);
        assert_eq!(p.backoff_before(3).as_secs_f64(), 8.0);
        assert_eq!(p.backoff_before(40).as_secs_f64(), 128.0, "capped at 64x");
    }
}
