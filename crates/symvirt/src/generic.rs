//! A generic guest-cooperation layer, independent of the MPI runtime.
//!
//! The paper's conclusion: "we will design and implement a generic
//! communication layer to support a guest OS cooperative migration
//! based on a SymVirt mechanism, which is independent on an MPI runtime
//! system. This will bring the benefit of an interconnect-transparent
//! migration to wide-ranging applications." (Section VII.)
//!
//! [`GuestCooperative`] is that contract: anything that can (1) reach a
//! consistent state and release device-pinned resources before the
//! blackout, and (2) re-bind its transports afterwards, can be
//! Ninja-migrated. The MPI runtime implements it (via CRCP + CRS); so
//! does [`SocketService`], a model of an ordinary request/response
//! service, demonstrating the mechanism on a non-MPI application.

use crate::error::SymVirtError;
use ninja_cluster::DataCenter;
use ninja_mpi::{CommEnv, ContinueOutcome, Crcp, MpiRuntime};
use ninja_sim::{SimDuration, SimTime};
use ninja_vmm::{VmId, VmPool};

/// Cost of the guest-side preparation (the "coordination" overhead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrepareReport {
    /// Wall-clock time to reach the consistent, device-free state.
    pub duration: SimDuration,
}

/// What resuming did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeOutcome {
    /// Transports were rebuilt onto whatever is reachable now.
    Rebuilt,
    /// Existing connections were still valid and were kept.
    Kept,
}

/// The guest-side cooperation contract SymVirt needs from an
/// application, independent of its communication middleware.
pub trait GuestCooperative {
    /// The VMs hosting the application.
    fn vms(&self) -> Vec<VmId>;

    /// Bring the distributed application to a globally consistent state
    /// and release every device-pinned resource (QPs, MRs, ...), so the
    /// VMM-bypass devices can be detached. Called before SymVirt wait.
    fn prepare_for_blackout(
        &mut self,
        pool: &VmPool,
        dc: &mut DataCenter,
        now: SimTime,
    ) -> Result<PrepareReport, SymVirtError>;

    /// Must the resume path wait for freshly attached links to train
    /// (e.g. because it will re-bind InfiniBand)?
    fn needs_link_wait(&self) -> bool;

    /// Re-establish communication after SymVirt signal; transports may
    /// have changed underneath.
    fn resume_after_blackout(
        &mut self,
        pool: &VmPool,
        dc: &mut DataCenter,
        now: SimTime,
    ) -> Result<ResumeOutcome, SymVirtError>;

    /// A short label of the transport currently in use (reporting).
    fn transport_label(&self) -> Option<String>;
}

impl GuestCooperative for MpiRuntime {
    fn vms(&self) -> Vec<VmId> {
        self.layout().vms().to_vec()
    }

    fn prepare_for_blackout(
        &mut self,
        pool: &VmPool,
        dc: &mut DataCenter,
        now: SimTime,
    ) -> Result<PrepareReport, SymVirtError> {
        if self.state() != ninja_mpi::RuntimeState::Active {
            return Err(SymVirtError::Runtime(ninja_mpi::MpiError::NotActive));
        }
        // Job-scoped snapshot: quiesce only ever costs collectives over
        // this runtime's own ranks, and a full-pool `from_world` here
        // is O(pool) per migration — quadratic across a fleet run.
        let env = CommEnv::for_vms(pool, dc, self.layout().vms());
        let quiesce = Crcp.quiesce(self, &env, now);
        let conns: usize = self.kind_census().values().sum();
        self.release_network(dc, pool)
            .map_err(SymVirtError::Runtime)?;
        // ibv_destroy_qp / deregistration are ~30 us each.
        let release = SimDuration::from_micros(30) * conns as u64;
        Ok(PrepareReport {
            duration: quiesce.total() + release,
        })
    }

    fn needs_link_wait(&self) -> bool {
        self.needs_reconstruction()
    }

    fn resume_after_blackout(
        &mut self,
        pool: &VmPool,
        dc: &mut DataCenter,
        now: SimTime,
    ) -> Result<ResumeOutcome, SymVirtError> {
        match self
            .continue_after(pool, dc, now)
            .map_err(SymVirtError::Runtime)?
        {
            ContinueOutcome::Reconstructed(_) => Ok(ResumeOutcome::Rebuilt),
            ContinueOutcome::KeptExisting => Ok(ResumeOutcome::Kept),
        }
    }

    fn transport_label(&self) -> Option<String> {
        self.uniform_network_kind().map(|k| k.to_string())
    }
}

/// A model of an ordinary (non-MPI) request/response service: a
/// front-end VM receives requests and fans them out to worker VMs over
/// plain TCP. Its cooperation contract is much simpler than MPI's — it
/// only needs to drain in-flight requests, because TCP connections
/// survive live migration and it never touches VMM-bypass devices.
#[derive(Debug)]
pub struct SocketService {
    vms: Vec<VmId>,
    /// Requests currently being processed (drained before blackout).
    inflight_requests: u32,
    /// Mean service time per in-flight request.
    service_time: SimDuration,
    /// Counts reconnects (sockets re-established after restart-style
    /// events; zero across plain live migrations).
    pub reconnects: u32,
    draining_done: bool,
}

impl SocketService {
    /// A service over the given VMs.
    pub fn new(vms: Vec<VmId>, service_time: SimDuration) -> Self {
        SocketService {
            vms,
            inflight_requests: 0,
            service_time,
            reconnects: 0,
            draining_done: false,
        }
    }

    /// Admit `n` requests (they will need draining before a blackout).
    pub fn admit(&mut self, n: u32) {
        self.inflight_requests += n;
        self.draining_done = false;
    }

    /// In-flight request count.
    pub fn inflight(&self) -> u32 {
        self.inflight_requests
    }
}

impl GuestCooperative for SocketService {
    fn vms(&self) -> Vec<VmId> {
        self.vms.clone()
    }

    fn prepare_for_blackout(
        &mut self,
        _pool: &VmPool,
        _dc: &mut DataCenter,
        _now: SimTime,
    ) -> Result<PrepareReport, SymVirtError> {
        // Stop admitting, drain what's in flight. Workers drain in
        // parallel; the slowest pipeline gates.
        let drain = self.service_time * self.inflight_requests.min(8) as u64;
        self.inflight_requests = 0;
        self.draining_done = true;
        Ok(PrepareReport { duration: drain })
    }

    fn needs_link_wait(&self) -> bool {
        false // plain TCP: usable the moment the guest resumes
    }

    fn resume_after_blackout(
        &mut self,
        _pool: &VmPool,
        _dc: &mut DataCenter,
        _now: SimTime,
    ) -> Result<ResumeOutcome, SymVirtError> {
        debug_assert!(self.draining_done, "resume without prepare");
        // Live migration preserves the sockets; nothing to rebuild.
        Ok(ResumeOutcome::Kept)
    }

    fn transport_label(&self) -> Option<String> {
        Some("tcp".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninja_cluster::{DataCenter, StorageId};
    use ninja_mpi::{JobLayout, MpiConfig};
    use ninja_sim::SimRng;
    use ninja_vmm::VmSpec;

    fn world() -> (DataCenter, VmPool, Vec<VmId>, SimTime) {
        let (mut dc, ib, _) = DataCenter::agc();
        let mut pool = VmPool::new();
        let mut rng = SimRng::new(3);
        let mut vms = Vec::new();
        let mut ready = SimTime::ZERO;
        for i in 0..3 {
            let vm = pool
                .create(
                    format!("vm{i}"),
                    VmSpec::paper_vm(),
                    dc.cluster(ib).nodes[i],
                    StorageId(0),
                    &mut dc,
                )
                .unwrap();
            let (_, at) = pool
                .attach_ib_hca(vm, &mut dc, SimTime::ZERO, &mut rng)
                .unwrap();
            ready = ready.max(at);
            vms.push(vm);
        }
        (dc, pool, vms, ready)
    }

    #[test]
    fn mpi_runtime_implements_the_contract() {
        let (mut dc, pool, vms, ready) = world();
        let mut rt = MpiRuntime::new(JobLayout::new(vms.clone(), 1), MpiConfig::default());
        rt.init(&pool, &mut dc, ready).unwrap();
        let app: &mut dyn GuestCooperative = &mut rt;
        assert_eq!(app.vms(), vms);
        assert_eq!(app.transport_label().as_deref(), Some("openib"));
        let report = app.prepare_for_blackout(&pool, &mut dc, ready).unwrap();
        assert!(report.duration.as_secs_f64() < 0.1);
        assert!(app.needs_link_wait());
        let out = app.resume_after_blackout(&pool, &mut dc, ready).unwrap();
        assert_eq!(out, ResumeOutcome::Rebuilt);
    }

    #[test]
    fn socket_service_drains_and_keeps_sockets() {
        let (mut dc, pool, vms, now) = world();
        let mut svc = SocketService::new(vms, SimDuration::from_millis(20));
        svc.admit(5);
        assert_eq!(svc.inflight(), 5);
        let report = svc.prepare_for_blackout(&pool, &mut dc, now).unwrap();
        assert_eq!(report.duration, SimDuration::from_millis(100));
        assert_eq!(svc.inflight(), 0);
        assert!(!svc.needs_link_wait(), "plain TCP needs no link training");
        let out = svc.resume_after_blackout(&pool, &mut dc, now).unwrap();
        assert_eq!(out, ResumeOutcome::Kept);
        assert_eq!(svc.reconnects, 0);
    }

    #[test]
    fn idle_service_prepares_instantly() {
        let (mut dc, pool, vms, now) = world();
        let mut svc = SocketService::new(vms, SimDuration::from_millis(20));
        let report = svc.prepare_for_blackout(&pool, &mut dc, now).unwrap();
        assert_eq!(report.duration, SimDuration::ZERO);
    }
}
