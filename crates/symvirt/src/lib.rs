//! # ninja-symvirt — the SymVirt cooperation mechanism
//!
//! SymVirt (from the authors' earlier eScience'12 paper) lets distributed
//! VMMs cooperate with the message-passing layer inside the guests:
//!
//! * the guest-side [`coordinator`] hooks the Open MPI CRS SELF
//!   callbacks: it quiesces the job (CRCP), releases InfiniBand
//!   resources, and issues the **SymVirt wait** hypercall that pauses
//!   the VM;
//! * the host-side [`controller`] (+ one agent per QEMU) waits for all
//!   guests (`wait_all`), drives monitor commands (`device_detach`,
//!   `migration`, `device_attach`) in parallel, and resumes the guests
//!   with **SymVirt signal** — the exact script API of the paper's
//!   Fig. 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod coordinator;
pub mod error;
pub mod faults;
pub mod generic;

pub use controller::{AgentAction, Controller, DevicePhase, MigrationPhase, PendingMigration};
pub use coordinator::{CoordReport, Coordinator};
pub use error::SymVirtError;
pub use faults::{FaultKind, FaultPhase, FaultPlan, FaultSpec, Injected, RetryPolicy};
pub use generic::{GuestCooperative, PrepareReport, ResumeOutcome, SocketService};
