//! Minimal, dependency-free stand-in for the subset of the `criterion`
//! benchmarking API this workspace uses.
//!
//! The real `criterion` crate cannot be fetched in offline builds.
//! This vendored crate keeps the workspace's `[[bench]]` targets
//! compiling and producing wall-clock numbers: each benchmark runs a
//! short warmup, then a fixed number of timed samples, and prints the
//! median/mean per-iteration time. There is no statistical analysis,
//! HTML report, or baseline comparison.

use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. Accepted for API
/// compatibility; this stub runs one setup per timed iteration.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    warmup_iters: u32,
    sample_iters: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup_iters: 3,
            sample_iters: 15,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warmup_iters: self.warmup_iters,
            sample_iters: self.sample_iters,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Collects timed samples for a single benchmark.
pub struct Bencher {
    warmup_iters: u32,
    sample_iters: u32,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over repeated iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.warmup_iters {
            black_box(routine());
        }
        for _ in 0..self.sample_iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` with a fresh un-timed `setup` value per
    /// iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.warmup_iters {
            let input = setup();
            black_box(routine(input));
        }
        for _ in 0..self.sample_iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<44} no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{id:<44} median {median:>12?}  mean {mean:>12?}  ({} samples)",
            sorted.len()
        );
    }
}

/// Groups benchmark functions into a single callable (simple
/// `criterion_group!(name, fn, ...)` form only).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
