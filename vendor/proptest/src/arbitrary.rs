//! `any::<T>()` support for the primitive types the workspace draws.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for the full range of `T` (see [`any`]).
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mag = rng.next_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}
