//! Deterministic test-case generation: configuration and RNG.

/// Per-`proptest!` configuration. Mirrors
/// `proptest::test_runner::Config` (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 32 }
    }
}

/// Deterministic splitmix64 generator, seeded from the test name so
/// every property gets a distinct but reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seeds from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        u128::from(self.next_u64()) % bound
    }
}
