//! Minimal, dependency-free stand-in for the subset of the `proptest`
//! API this workspace uses.
//!
//! The real `proptest` crate cannot be fetched in offline builds, so
//! this vendored crate reimplements just enough of its surface for the
//! workspace's property tests to compile and run deterministically:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` header),
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//!   integer / float range strategies, tuple strategies, `Just`,
//!   [`prop_oneof!`], `any::<T>()`, and `prop::collection::vec`,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Unlike real proptest there is no shrinking and no persistence of
//! failing cases: inputs are drawn from a fixed-seed deterministic
//! generator (seeded per test name), so failures reproduce exactly
//! across runs and machines.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors `proptest::prelude::prop` (module re-exports).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests. Each parameter is drawn from its strategy
/// for `Config::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $( let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )+
                $body
            }
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between several strategies producing the same value
/// type. (Weighted arms of real proptest are not supported.)
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
