//! The `Strategy` trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy (output of [`Strategy::boxed`]).
#[derive(Clone)]
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice over boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u128) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
